#include <gtest/gtest.h>

#include "workloads/graph_gen.h"
#include "workloads/hyperanf.h"

namespace rnr {
namespace {

WorkloadOptions
opts()
{
    WorkloadOptions o;
    o.cores = 2;
    return o;
}

std::vector<TraceBuffer>
emit(HyperAnfWorkload &wl, unsigned iter, bool last)
{
    std::vector<TraceBuffer> bufs(wl.cores());
    wl.emitIteration(iter, last, bufs);
    return bufs;
}

TEST(HyperAnfTest, NeighbourhoodFunctionGrowsMonotonically)
{
    HyperAnfWorkload wl(makeUrandGraph(512, 6, 21), opts());
    double prev = wl.neighbourhoodFunction();
    for (unsigned it = 0; it < 6; ++it) {
        emit(wl, it, it == 5);
        const double nf = wl.neighbourhoodFunction();
        EXPECT_GE(nf, prev);
        prev = nf;
    }
}

TEST(HyperAnfTest, ConvergesWithinDiameterIterations)
{
    // A small dense random graph has a tiny diameter: sketches stop
    // changing after a handful of rounds.
    HyperAnfWorkload wl(makeUrandGraph(256, 8, 23), opts());
    std::uint64_t last = 1;
    for (unsigned it = 0; it < 12 && last; ++it) {
        emit(wl, it, false);
        last = wl.lastChanged();
    }
    EXPECT_EQ(last, 0u);
}

TEST(HyperAnfTest, EstimatesAreAtLeastOneVertex)
{
    HyperAnfWorkload wl(makeUrandGraph(128, 4, 29), opts());
    emit(wl, 0, true);
    for (std::uint32_t v = 0; v < 128; ++v)
        EXPECT_GT(wl.estimate(v), 0.5);
}

TEST(HyperAnfTest, TraceIsEdgeCentric)
{
    HyperAnfWorkload wl(makeUrandGraph(256, 6, 31), opts());
    auto bufs = emit(wl, 0, false);
    std::uint64_t loads = 0, stores = 0;
    for (const auto &b : bufs) {
        loads += b.loads();
        stores += b.stores();
    }
    // 3 loads (edge pair, hc[src], hc[dst]) + 1 store per edge.
    EXPECT_EQ(loads % 3, 0u);
    EXPECT_EQ(stores, loads / 3);
}

TEST(HyperAnfTest, RnrTargetsTheSketchArray)
{
    HyperAnfWorkload wl(makeUrandGraph(256, 6, 33), opts());
    auto bufs = emit(wl, 0, false);
    const auto &recs = bufs[0].records();
    ASSERT_GE(recs.size(), 3u);
    EXPECT_EQ(recs[0].ctrl, RnrOp::Init);
    EXPECT_EQ(recs[1].ctrl, RnrOp::AddrBaseSet);
    const AddressSpace::Region *r = wl.space().find("anf_sketches");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(recs[1].addr, r->base);
}

TEST(HyperAnfTest, IterationTracesRepeatExactly)
{
    HyperAnfWorkload wl(makeUrandGraph(256, 6, 35), opts());
    auto a = emit(wl, 1, false);
    auto b = emit(wl, 2, false);
    ASSERT_EQ(a[0].size(), b[0].size());
    for (std::size_t i = 0; i < a[0].size(); ++i)
        ASSERT_EQ(a[0].records()[i].addr, b[0].records()[i].addr) << i;
}

} // namespace
} // namespace rnr
