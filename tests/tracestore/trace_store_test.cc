/**
 * @file
 * TraceStore lifecycle tests: capture/publish/hit, abort, quarantine,
 * hash-collision-as-miss, cap eviction and single-flight blocking.
 *
 * Every test repoints $RNR_TRACE_DIR at a fresh temp directory and calls
 * resetForTest() so counters start at zero and no in-flight state leaks
 * between tests.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/rng.h"
#include "trace/trace_buffer.h"
#include "tracestore/trace_file.h"
#include "tracestore/trace_store.h"

namespace rnr {
namespace {

namespace fs = std::filesystem;

class TraceStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("rnr_store_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name())))
                    .string();
        fs::remove_all(root_);
        setenv("RNR_TRACE_DIR", root_.c_str(), 1);
        unsetenv("RNR_TRACE_CAP_MB");
        setenv("RNR_PROGRESS", "0", 1);
        TraceStore::instance().resetForTest();
    }

    void
    TearDown() override
    {
        TraceStore::instance().resetForTest();
        unsetenv("RNR_TRACE_DIR");
        unsetenv("RNR_TRACE_CAP_MB");
        fs::remove_all(root_);
    }

    /** A small deterministic trace with loads, stores and controls. */
    static TraceBuffer
    makeTrace(std::uint64_t seed, std::size_t n)
    {
        Rng rng(seed);
        TraceBuffer buf;
        buf.push(TraceRecord::control(RnrOp::Init));
        buf.push(TraceRecord::control(RnrOp::AddrBaseSet, 0x1000, 4096));
        for (std::size_t i = 0; i < n; ++i) {
            const Addr a = 0x1000 + rng.below(4096);
            const std::uint32_t pc = 100 + static_cast<std::uint32_t>(i % 7);
            if (i % 5 == 0)
                buf.push(TraceRecord::store(a, pc, 2));
            else
                buf.push(TraceRecord::load(a, pc, 3));
        }
        buf.push(TraceRecord::control(RnrOp::EndState));
        return buf;
    }

    /** Incompressible trace: full-range random addresses and PCs, so
     *  every record costs ~17 bytes even after delta coding (the cap
     *  test needs entries that actually occupy disk). */
    static TraceBuffer
    makeWideTrace(std::uint64_t seed, std::size_t n)
    {
        Rng rng(seed);
        TraceBuffer buf;
        for (std::size_t i = 0; i < n; ++i)
            buf.push(TraceRecord::load(
                rng.next64(), static_cast<std::uint32_t>(rng.next64()), 1));
        return buf;
    }

    /** Captures and publishes an entry for @p wkey; returns its records. */
    static std::uint64_t
    publishEntry(const std::string &wkey, unsigned iterations, unsigned cores,
                 std::size_t records_per_buf, std::uint64_t seed = 1,
                 bool wide = false)
    {
        TraceStore &store = TraceStore::instance();
        TraceStore::Entry entry;
        EXPECT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Owner);
        TraceStore::Capture cap =
            store.beginCapture(wkey, iterations, cores);
        std::uint64_t records = 0;
        for (unsigned it = 0; it < iterations; ++it)
            for (unsigned c = 0; c < cores; ++c) {
                TraceBuffer buf =
                    wide ? makeWideTrace(seed + it * 131 + c, records_per_buf)
                         : makeTrace(seed + it * 131 + c, records_per_buf);
                records += buf.size();
                EXPECT_TRUE(bool(cap.add(it, c, buf)));
            }
        EXPECT_TRUE(cap.publish(12345, 67890));
        return records;
    }

    std::string root_;
};

TEST_F(TraceStoreTest, CaptureThenHitRoundTrips)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = "pagerank:u16:w4096:i3:n2";

    const std::uint64_t records = publishEntry(wkey, 3, 2, 500);
    EXPECT_EQ(store.captures(), 1u);
    EXPECT_EQ(store.hits(), 0u);

    TraceStore::Entry entry;
    ASSERT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Hit);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(entry.key, wkey);
    EXPECT_EQ(entry.iterations, 3u);
    EXPECT_EQ(entry.cores, 2u);
    EXPECT_EQ(entry.records, records);
    EXPECT_EQ(entry.input_bytes, 12345u);
    EXPECT_EQ(entry.target_bytes, 67890u);
    EXPECT_GT(entry.raw_bytes, 0u);
    EXPECT_GT(entry.stored_bytes, 0u);
    // Delta+varint coding should beat the 32 B in-memory record.
    EXPECT_LT(entry.stored_bytes, entry.raw_bytes);

    // Every (iteration, core) file decodes to exactly what went in.
    for (unsigned it = 0; it < 3; ++it)
        for (unsigned c = 0; c < 2; ++c) {
            TraceBuffer expect = makeTrace(1 + it * 131 + c, 500);
            TraceBuffer got;
            ASSERT_TRUE(bool(readAnyTraceFile(entry.tracePath(it, c), got)));
            ASSERT_EQ(got.size(), expect.size());
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got.records()[i].addr, expect.records()[i].addr);
                EXPECT_EQ(got.records()[i].pc, expect.records()[i].pc);
                EXPECT_EQ(got.records()[i].kind, expect.records()[i].kind);
            }
        }
}

TEST_F(TraceStoreTest, AbortedCaptureLeavesNoEntryAndReleasesKey)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = "spcg:d4000:w4096:i2:n1";

    TraceStore::Entry entry;
    ASSERT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Owner);
    {
        TraceStore::Capture cap = store.beginCapture(wkey, 2, 1);
        TraceBuffer buf = makeTrace(7, 100);
        ASSERT_TRUE(bool(cap.add(0, 0, buf)));
        // No publish: destructor aborts the half-written entry.
    }
    EXPECT_EQ(store.captures(), 0u);

    // The key is free again (a fresh acquire owns it, not deadlocks),
    // and no temp or entry directory survived the abort.
    ASSERT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Owner);
    store.beginCapture(wkey, 2, 1); // immediately aborted; releases key
    EXPECT_FALSE(fs::exists(fs::path(root_) / traceStoreHashName(wkey)));
    std::size_t dirents = 0;
    if (fs::exists(root_))
        for ([[maybe_unused]] auto &d : fs::directory_iterator(root_))
            ++dirents;
    EXPECT_EQ(dirents, 0u);
}

TEST_F(TraceStoreTest, TruncatedTraceFileIsQuarantinedAndRecaptured)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = "jacobi:d2000:w4096:i2:n1";
    publishEntry(wkey, 2, 1, 300);

    // Truncate one trace file: validation sums per-file footer records
    // against the manifest, so the entry must read as corrupt.
    TraceStore::Entry entry;
    ASSERT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Hit);
    const std::string victim = entry.tracePath(1, 0);
    const auto full = fs::file_size(victim);
    fs::resize_file(victim, full / 2);

    TraceStore::Entry again;
    EXPECT_EQ(store.acquire(wkey, again), TraceStore::Acquire::Owner);
    EXPECT_GE(store.corruptEntries(), 1u);
    EXPECT_FALSE(fs::exists(fs::path(root_) / traceStoreHashName(wkey)));

    // Recapture repairs the corpus.
    TraceStore::Capture cap = store.beginCapture(wkey, 2, 1);
    for (unsigned it = 0; it < 2; ++it) {
        TraceBuffer buf = makeTrace(it, 300);
        ASSERT_TRUE(bool(cap.add(it, 0, buf)));
    }
    ASSERT_TRUE(cap.publish(1, 1));
    EXPECT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Hit);
}

TEST_F(TraceStoreTest, GarbageManifestIsQuarantined)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = "labelprop:u14:w4096:i1:n1";
    publishEntry(wkey, 1, 1, 50);

    {
        std::ofstream m(fs::path(root_) / traceStoreHashName(wkey) /
                        "manifest");
        m << "not a manifest\n";
    }
    TraceStore::Entry entry;
    EXPECT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Owner);
    EXPECT_GE(store.corruptEntries(), 1u);
    store.beginCapture(wkey, 1, 1); // abort; release ownership
}

TEST_F(TraceStoreTest, HashCollisionReadsAsMissWithoutQuarantine)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = "hyperanf:u15:w4096:i1:n1";
    publishEntry(wkey, 1, 1, 50);

    // Simulate another key hashing to our directory: rewrite the
    // manifest's key line.  The store must treat this as a miss for
    // wkey (the manifest holds the authoritative key) but NOT corrupt:
    // the entry legitimately belongs to the other key.
    const fs::path dir = fs::path(root_) / traceStoreHashName(wkey);
    std::vector<std::string> lines;
    {
        std::ifstream m(dir / "manifest");
        for (std::string l; std::getline(m, l);)
            lines.push_back(l);
    }
    {
        std::ofstream m(dir / "manifest", std::ios::trunc);
        for (auto &l : lines) {
            if (l.rfind("key ", 0) == 0)
                l = "key somebody:else:w1:i1:n1";
            m << l << "\n";
        }
    }

    const std::uint64_t corrupt_before = store.corruptEntries();
    TraceStore::Entry entry;
    EXPECT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Owner);
    EXPECT_EQ(store.corruptEntries(), corrupt_before);
    EXPECT_TRUE(fs::exists(dir)); // the other key's entry survives...

    // ...until we publish ours, which takes the directory over.
    TraceStore::Capture cap = store.beginCapture(wkey, 1, 1);
    TraceBuffer buf = makeTrace(3, 50);
    ASSERT_TRUE(bool(cap.add(0, 0, buf)));
    ASSERT_TRUE(cap.publish(0, 0));
    ASSERT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Hit);
    EXPECT_EQ(entry.key, wkey);
}

TEST_F(TraceStoreTest, InvalidateRemovesEntry)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = "pagerank:u12:w4096:i1:n1";
    publishEntry(wkey, 1, 1, 50);

    store.invalidate(wkey);
    EXPECT_GE(store.corruptEntries(), 1u);
    TraceStore::Entry entry;
    EXPECT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Owner);
    store.beginCapture(wkey, 1, 1); // abort; release ownership
}

TEST_F(TraceStoreTest, CapEvictsOldestEntryButNeverTheJustPublished)
{
    setenv("RNR_TRACE_CAP_MB", "1", 1);
    TraceStore &store = TraceStore::instance();

    // Full-range random addresses defeat the delta coder, so each
    // entry stays comfortably over half the 1 MiB cap.
    const std::string old_key = "pagerank:big0:w4096:i1:n1";
    const std::string new_key = "pagerank:big1:w4096:i1:n1";
    publishEntry(old_key, 1, 1, 60000, 11, true);
    publishEntry(new_key, 1, 1, 60000, 22, true);

    EXPECT_GE(store.evictions(), 1u);
    TraceStore::Entry entry;
    // The freshly published entry must survive its own publish...
    EXPECT_EQ(store.acquire(new_key, entry), TraceStore::Acquire::Hit);
    // ...while the older entry was evicted.
    EXPECT_EQ(store.acquire(old_key, entry), TraceStore::Acquire::Owner);
    store.beginCapture(old_key, 1, 1); // abort; release ownership
}

TEST_F(TraceStoreTest, ListEntriesReportsTheCorpus)
{
    TraceStore &store = TraceStore::instance();
    publishEntry("a:in:w1:i1:n1", 1, 1, 40);
    publishEntry("b:in:w1:i2:n2", 2, 2, 40);

    std::vector<TraceStore::Entry> entries = store.listEntries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].key, "a:in:w1:i1:n1");
    EXPECT_EQ(entries[1].key, "b:in:w1:i2:n2");
    EXPECT_EQ(entries[1].iterations, 2u);
    EXPECT_EQ(entries[1].cores, 2u);
    for (const auto &e : entries) {
        EXPECT_GT(e.records, 0u);
        EXPECT_GT(e.stored_bytes, 0u);
    }
}

TEST_F(TraceStoreTest, SecondThreadBlocksUntilOwnerPublishesThenHits)
{
    TraceStore &store = TraceStore::instance();
    const std::string wkey = "spcg:d8000:w4096:i1:n1";

    TraceStore::Entry entry;
    ASSERT_EQ(store.acquire(wkey, entry), TraceStore::Acquire::Owner);
    TraceStore::Capture cap = store.beginCapture(wkey, 1, 1);

    TraceStore::Acquire waiter_result = TraceStore::Acquire::Owner;
    std::thread waiter([&] {
        TraceStore::Entry e;
        waiter_result = store.acquire(wkey, e);
    });

    TraceBuffer buf = makeTrace(5, 200);
    ASSERT_TRUE(bool(cap.add(0, 0, buf)));
    ASSERT_TRUE(cap.publish(0, 0));
    waiter.join();
    EXPECT_EQ(waiter_result, TraceStore::Acquire::Hit);
    EXPECT_EQ(store.captures(), 1u);
    EXPECT_EQ(store.hits(), 1u);
}

TEST_F(TraceStoreTest, HashNameIsStable16HexDigits)
{
    const std::string a = traceStoreHashName("pagerank:u16:w4096:i3:n2");
    const std::string b = traceStoreHashName("pagerank:u16:w4096:i3:n2");
    const std::string c = traceStoreHashName("pagerank:u16:w4096:i3:n4");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.size(), 16u);
    for (char ch : a)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(ch))) << a;
}

TEST_F(TraceStoreTest, EnvControlsEnableDirAndCap)
{
    EXPECT_EQ(TraceStore::rootPath(), root_);
    EXPECT_TRUE(TraceStore::enabled());
    setenv("RNR_TRACE_STORE", "0", 1);
    EXPECT_FALSE(TraceStore::enabled());
    unsetenv("RNR_TRACE_STORE");
    EXPECT_TRUE(TraceStore::enabled());
    setenv("RNR_TRACE_CAP_MB", "3", 1);
    EXPECT_EQ(TraceStore::capBytes(), 3ull << 20);
    unsetenv("RNR_TRACE_CAP_MB");
    EXPECT_EQ(TraceStore::capBytes(), 0u);
}

} // namespace
} // namespace rnr
