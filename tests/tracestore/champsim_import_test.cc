/**
 * @file
 * ChampSim importer tests: slot-to-record mapping, pc folding, gap
 * accumulation, error reporting, and the checked-in fixture used by the
 * CI convert->simulate smoke test.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tracestore/champsim_import.h"
#include "tracestore/trace_codec.h"
#include "tracestore/trace_file.h"

namespace rnr {
namespace {

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** One packed 64-byte ChampSim record under construction. */
struct ChampRec {
    std::uint8_t bytes[kChampSimRecordBytes] = {};

    static void
    putU64(std::uint8_t *p, std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }

    ChampRec &
    ip(std::uint64_t v)
    {
        putU64(bytes + 0, v);
        return *this;
    }
    ChampRec &
    destMem(int slot, std::uint64_t v)
    {
        putU64(bytes + 16 + 8 * slot, v);
        return *this;
    }
    ChampRec &
    srcMem(int slot, std::uint64_t v)
    {
        putU64(bytes + 32 + 8 * slot, v);
        return *this;
    }
};

std::string
writeChampFile(const std::string &name, const std::vector<ChampRec> &recs,
               std::size_t extra_bytes = 0)
{
    const std::string path = tempPath(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const auto &r : recs)
        out.write(reinterpret_cast<const char *>(r.bytes),
                  kChampSimRecordBytes);
    for (std::size_t i = 0; i < extra_bytes; ++i)
        out.put('\0');
    return path;
}

TEST(ChampSimImport, MapsMemorySlotsToLoadAndStoreRecords)
{
    std::vector<ChampRec> recs(3);
    recs[0].ip(0x400000).srcMem(0, 0x1000).srcMem(2, 0x2000);
    recs[1].ip(0x400004).destMem(1, 0x3000);
    recs[2].ip(0x400008).srcMem(0, 0x4000).destMem(0, 0x5000);

    TraceBuffer buf;
    ChampSimImportStats stats;
    const std::string path = writeChampFile("champ_map.trace", recs);
    ASSERT_TRUE(bool(importChampSimTrace(path, buf, &stats)));

    EXPECT_EQ(stats.instructions, 3u);
    EXPECT_EQ(stats.loads, 3u);
    EXPECT_EQ(stats.stores, 2u);
    EXPECT_EQ(stats.memless, 0u);

    ASSERT_EQ(buf.size(), 5u);
    const auto &r = buf.records();
    // Instruction 0: src slots scanned in order.
    EXPECT_EQ(r[0].kind, RecordKind::Load);
    EXPECT_EQ(r[0].addr, 0x1000u);
    EXPECT_EQ(r[1].kind, RecordKind::Load);
    EXPECT_EQ(r[1].addr, 0x2000u);
    // Instruction 1: dest slot -> store.
    EXPECT_EQ(r[2].kind, RecordKind::Store);
    EXPECT_EQ(r[2].addr, 0x3000u);
    // Instruction 2: sources before destinations.
    EXPECT_EQ(r[3].kind, RecordKind::Load);
    EXPECT_EQ(r[3].addr, 0x4000u);
    EXPECT_EQ(r[4].kind, RecordKind::Store);
    EXPECT_EQ(r[4].addr, 0x5000u);

    // All of instruction 0/2's records share that instruction's pc.
    EXPECT_EQ(r[0].pc, r[1].pc);
    EXPECT_EQ(r[3].pc, r[4].pc);
    EXPECT_NE(r[0].pc, r[2].pc);
}

TEST(ChampSimImport, FoldsHighIpBitsIntoPc)
{
    std::vector<ChampRec> recs(2);
    recs[0].ip(0x00007f0012345678ull).srcMem(0, 0x1000);
    recs[1].ip(0x0000000012345678ull).srcMem(0, 0x1000);

    TraceBuffer buf;
    const std::string path = writeChampFile("champ_fold.trace", recs);
    ASSERT_TRUE(bool(importChampSimTrace(path, buf, nullptr)));
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.records()[0].pc, 0x12345678u ^ 0x00007f00u);
    EXPECT_EQ(buf.records()[1].pc, 0x12345678u);
    EXPECT_NE(buf.records()[0].pc, buf.records()[1].pc);
}

TEST(ChampSimImport, MemlessInstructionsAccumulateIntoNextGap)
{
    std::vector<ChampRec> recs(5);
    recs[0].ip(0x400000).srcMem(0, 0x1000);
    recs[1].ip(0x400004); // memless
    recs[2].ip(0x400008); // memless
    recs[3].ip(0x40000c).srcMem(0, 0x2000);
    recs[4].ip(0x400010); // trailing memless: dropped (no next record)

    TraceBuffer buf;
    ChampSimImportStats stats;
    const std::string path = writeChampFile("champ_gap.trace", recs);
    ASSERT_TRUE(bool(importChampSimTrace(path, buf, &stats)));

    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.records()[0].gap, 0u);
    EXPECT_EQ(buf.records()[1].gap, 2u);
    EXPECT_EQ(stats.memless, 3u);
}

TEST(ChampSimImport, TrailingBytesReportTruncatedWithHint)
{
    std::vector<ChampRec> recs(2);
    recs[0].ip(0x400000).srcMem(0, 0x1000);
    recs[1].ip(0x400004).srcMem(0, 0x2000);
    const std::string path =
        writeChampFile("champ_torn.trace", recs, /*extra_bytes=*/17);

    TraceBuffer buf;
    TraceIoResult r = importChampSimTrace(path, buf, nullptr);
    EXPECT_FALSE(bool(r));
    EXPECT_EQ(r.status, TraceIoStatus::Truncated);
    EXPECT_NE(r.message().find("17"), std::string::npos) << r.message();
    EXPECT_NE(r.message().find("compressed"), std::string::npos)
        << r.message();
}

TEST(ChampSimImport, EmptyFileIsAnError)
{
    const std::string path = writeChampFile("champ_empty.trace", {});
    TraceBuffer buf;
    TraceIoResult r = importChampSimTrace(path, buf, nullptr);
    EXPECT_FALSE(bool(r));
    EXPECT_EQ(r.status, TraceIoStatus::Truncated);
}

TEST(ChampSimImport, MissingFileReportsOpenFailedWithErrno)
{
    TraceBuffer buf;
    TraceIoResult r =
        importChampSimTrace(tempPath("champ_nonexistent.trace"), buf, nullptr);
    EXPECT_FALSE(bool(r));
    EXPECT_EQ(r.status, TraceIoStatus::OpenFailed);
    EXPECT_NE(r.sys_errno, 0);
}

// ---- The checked-in fixture (also exercised by the CI smoke test) ----
//
// tests/data/champsim_tiny.trace holds 64 records in a 4-phase pattern:
// load / store / (2 loads + 1 store) / memless.

TEST(ChampSimImport, ChecksInFixtureImportsWithExpectedShape)
{
    const std::string path =
        std::string(RNR_TEST_DATA_DIR) + "/champsim_tiny.trace";

    TraceBuffer buf;
    ChampSimImportStats stats;
    TraceIoResult r = importChampSimTrace(path, buf, &stats);
    ASSERT_TRUE(bool(r)) << r.message();

    EXPECT_EQ(stats.instructions, 64u);
    EXPECT_EQ(stats.loads, 48u);
    EXPECT_EQ(stats.stores, 32u);
    EXPECT_EQ(stats.memless, 16u);
    EXPECT_EQ(buf.size(), 80u);
    EXPECT_EQ(buf.loads(), 48u);
    EXPECT_EQ(buf.stores(), 32u);

    // Every 4th instruction was memless, so every post-gap record
    // carries gap 1 and the rest gap 0.
    std::uint64_t gap_sum = 0;
    for (const auto &rec : buf.records())
        gap_sum += rec.gap;
    EXPECT_EQ(gap_sum, 15u); // 16 memless; the last trails off unattached
}

TEST(ChampSimImport, FixtureConvertsToV2AndReadsBack)
{
    const std::string src =
        std::string(RNR_TEST_DATA_DIR) + "/champsim_tiny.trace";
    const std::string dst = tempPath("champ_tiny_convert.rnrt");

    TraceBuffer buf;
    ASSERT_TRUE(bool(importChampSimTrace(src, buf, nullptr)));
    ASSERT_TRUE(bool(writeTraceFileV2(dst, buf)));

    TraceFileStats stats;
    ASSERT_TRUE(bool(readAnyTraceFileStats(dst, stats)));
    EXPECT_EQ(stats.records, buf.size());
    EXPECT_EQ(stats.loads, buf.loads());
    EXPECT_EQ(stats.stores, buf.stores());

    TraceBuffer back;
    ASSERT_TRUE(bool(readAnyTraceFile(dst, back)));
    ASSERT_EQ(back.size(), buf.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back.records()[i].addr, buf.records()[i].addr);
        EXPECT_EQ(back.records()[i].pc, buf.records()[i].pc);
        EXPECT_EQ(back.records()[i].kind, buf.records()[i].kind);
        EXPECT_EQ(back.records()[i].gap, buf.records()[i].gap);
    }
}

} // namespace
} // namespace rnr
