/**
 * @file
 * v2 codec tests: randomized round-trips (including control markers and
 * pathological address deltas), block-boundary sizes, the decode-free
 * stats footer, corruption/truncation reporting, and v1 backward
 * compatibility through the version-dispatching readers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "trace/trace_io.h"
#include "tracestore/trace_codec.h"
#include "tracestore/trace_file.h"
#include "tracestore/trace_reader.h"

namespace rnr {
namespace {

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Deterministic pseudo-random trace mixing all record kinds. */
TraceBuffer
fuzzTrace(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    TraceBuffer buf;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t pick = rng.below(100);
        if (pick < 4) {
            // Control markers, including payloads using the full range.
            TraceRecord r = TraceRecord::control(
                static_cast<RnrOp>(rng.below(11)), rng.next64(),
                rng.next64());
            r.gap = static_cast<std::uint32_t>(rng.below(64));
            buf.push(r);
            continue;
        }
        // A handful of access sites with different behaviours:
        // sequential, strided, random, and a site that oscillates
        // between address-space extremes (pathological deltas).
        const std::uint32_t site =
            static_cast<std::uint32_t>(rng.below(6));
        Addr addr = 0;
        switch (site) {
          case 0: addr = 0x10000000 + i * 8; break;
          case 1: addr = 0x20000000 + i * 4096; break;
          case 2: addr = rng.next64(); break;
          case 3: addr = (i & 1) ? 0xffffffffffffffffull : 0; break;
          case 4: addr = 0x30000000 - i * 16; break; // descending
          default: addr = 0x40000000 + rng.below(1 << 20); break;
        }
        const std::uint32_t gap =
            static_cast<std::uint32_t>(rng.below(32));
        buf.push(pick < 60 ? TraceRecord::load(addr, site, gap)
                           : TraceRecord::store(addr, site, gap));
    }
    return buf;
}

void
expectSameRecords(const TraceBuffer &a, const TraceBuffer &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const TraceRecord &x = a.records()[i];
        const TraceRecord &y = b.records()[i];
        ASSERT_EQ(x.addr, y.addr) << "record " << i;
        ASSERT_EQ(x.aux, y.aux) << "record " << i;
        ASSERT_EQ(x.pc, y.pc) << "record " << i;
        ASSERT_EQ(x.gap, y.gap) << "record " << i;
        ASSERT_EQ(x.kind, y.kind) << "record " << i;
        if (x.kind == RecordKind::Control) {
            ASSERT_EQ(x.ctrl, y.ctrl) << "record " << i;
        }
    }
}

TEST(TraceCodec, BlockRoundTripsRandomStreams)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        const TraceBuffer buf = fuzzTrace(seed, 3000);
        std::vector<std::uint8_t> payload;
        encodeBlock(buf.records().data(), buf.size(), payload);
        std::vector<TraceRecord> out;
        ASSERT_TRUE(decodeBlock(payload.data(), payload.size(),
                                buf.size(), out));
        TraceBuffer round;
        for (const TraceRecord &r : out)
            round.push(r);
        expectSameRecords(buf, round);
    }
}

TEST(TraceCodec, FileRoundTripsAcrossBlockBoundaries)
{
    // Exactly at, one under and one over a block boundary, plus empty
    // and tiny traces.
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{4095}, std::size_t{4096},
                          std::size_t{4097}, std::size_t{10000}}) {
        const std::string path =
            tmpPath("codec_rt_" + std::to_string(n) + ".rnrt");
        const TraceBuffer buf = fuzzTrace(7 + n, n);
        ASSERT_TRUE(writeTraceFileV2(path, buf));
        TraceBuffer out;
        ASSERT_TRUE(readAnyTraceFile(path, out)) << "n=" << n;
        expectSameRecords(buf, out);
        std::remove(path.c_str());
    }
}

TEST(TraceCodec, SmallBlockSizesDecodeIndependently)
{
    const std::string path = tmpPath("codec_small_blocks.rnrt");
    const TraceBuffer buf = fuzzTrace(99, 1000);
    ASSERT_TRUE(writeTraceFileV2(path, buf, 17)); // awkward block size
    TraceBuffer out;
    ASSERT_TRUE(readAnyTraceFile(path, out));
    expectSameRecords(buf, out);
    std::remove(path.c_str());
}

TEST(TraceCodec, StatsFooterMatchesWithoutDecoding)
{
    const std::string path = tmpPath("codec_stats.rnrt");
    const TraceBuffer buf = fuzzTrace(5, 9000);
    ASSERT_TRUE(writeTraceFileV2(path, buf));

    TraceFileStats stats;
    std::vector<TraceBlockIndexEntry> index;
    ASSERT_TRUE(readTraceFileV2Stats(path, stats, &index));
    EXPECT_EQ(stats.records, buf.size());
    EXPECT_EQ(stats.loads, buf.loads());
    EXPECT_EQ(stats.stores, buf.stores());
    EXPECT_EQ(stats.controls, buf.controls());
    EXPECT_EQ(stats.instructions, buf.instructions());
    EXPECT_EQ(stats.raw_bytes, buf.memoryBytes());
    EXPECT_EQ(index.size(), (buf.size() + 4095) / 4096);

    std::uint64_t indexed = 0;
    for (const auto &e : index)
        indexed += e.record_count;
    EXPECT_EQ(indexed, buf.size());

    // The footer's address span covers every memory record.
    Addr lo = ~Addr{0}, hi = 0;
    for (const TraceRecord &r : buf.records())
        if (r.kind != RecordKind::Control) {
            lo = std::min(lo, r.addr);
            hi = std::max(hi, r.addr);
        }
    EXPECT_EQ(stats.min_addr, lo);
    EXPECT_EQ(stats.max_addr, hi);
    std::remove(path.c_str());
}

TEST(TraceCodec, CompressesSequentialTracesAtLeast3x)
{
    // The acceptance bar: workload-shaped traces (a few interleaved
    // streams, small gaps) must compress >= 3x against v1.
    TraceBuffer buf;
    for (std::size_t i = 0; i < 50000; ++i) {
        buf.push(TraceRecord::load(0x10000000 + i * 4, 1, 3));
        buf.push(TraceRecord::load(0x20000000 + i * 8, 2, 1));
        buf.push(TraceRecord::load(
            0x30000000 + (i * 2654435761ull & 0xfffff), 3, 2));
        buf.push(TraceRecord::store(0x40000000 + i * 8, 4, 0));
    }
    const std::string v1 = tmpPath("codec_ratio_v1.rnrt");
    const std::string v2 = tmpPath("codec_ratio_v2.rnrt");
    ASSERT_TRUE(writeTraceFile(v1, buf));
    ASSERT_TRUE(writeTraceFileV2(v2, buf));
    const std::uint64_t v1_bytes = traceFileSizeBytes(v1);
    const std::uint64_t v2_bytes = traceFileSizeBytes(v2);
    ASSERT_GT(v2_bytes, 0u);
    EXPECT_GE(v1_bytes, 3 * v2_bytes)
        << "v1=" << v1_bytes << " v2=" << v2_bytes;
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(TraceCodec, V1FilesReadBackThroughDispatchingReader)
{
    const std::string path = tmpPath("codec_v1_compat.rnrt");
    const TraceBuffer buf = fuzzTrace(11, 2000);
    ASSERT_TRUE(writeTraceFile(path, buf)); // v1 writer

    std::uint32_t version = 0;
    ASSERT_TRUE(probeTraceFileVersion(path, version));
    EXPECT_EQ(version, kTraceFormatVersion);

    TraceBuffer out;
    ASSERT_TRUE(readAnyTraceFile(path, out));
    expectSameRecords(buf, out);

    // v1 stats take the streaming path but report the same shape.
    TraceFileStats stats;
    ASSERT_TRUE(readAnyTraceFileStats(path, stats));
    EXPECT_EQ(stats.records, buf.size());
    EXPECT_EQ(stats.loads, buf.loads());
    EXPECT_EQ(stats.controls, buf.controls());
    std::remove(path.c_str());
}

TEST(TraceCodec, ReadersReportWhyAFileIsBad)
{
    const std::string path = tmpPath("codec_bad.rnrt");

    { // Not a trace file at all.
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "definitely not a trace";
    }
    TraceBuffer buf;
    TraceIoResult r = readAnyTraceFile(path, buf);
    EXPECT_EQ(r.status, TraceIoStatus::BadMagic);
    EXPECT_NE(r.message().find("bad magic"), std::string::npos)
        << r.message();

    { // Good magic, unknown version.
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write("RNRTRACE", 8);
        const std::uint32_t version = 99, extra = 0;
        out.write(reinterpret_cast<const char *>(&version), 4);
        out.write(reinterpret_cast<const char *>(&extra), 4);
    }
    r = readAnyTraceFile(path, buf);
    EXPECT_EQ(r.status, TraceIoStatus::BadVersion);
    EXPECT_NE(r.message().find("99"), std::string::npos) << r.message();

    // Truncated v2 payload: write a valid file then chop its tail.
    const TraceBuffer full = fuzzTrace(3, 6000);
    ASSERT_TRUE(writeTraceFileV2(path, full));
    const std::uint64_t size = traceFileSizeBytes(path);
    std::filesystem::resize_file(path, size / 2);
    buf.clear();
    r = readAnyTraceFile(path, buf);
    EXPECT_FALSE(r);
    EXPECT_TRUE(r.status == TraceIoStatus::Truncated ||
                r.status == TraceIoStatus::CorruptBlock)
        << toString(r.status);

    // The footer reader notices the truncation too.
    TraceFileStats stats;
    r = readTraceFileV2Stats(path, stats);
    EXPECT_FALSE(r);

    // Missing file: errno-carrying open failure.
    std::remove(path.c_str());
    r = readAnyTraceFile(path, buf);
    EXPECT_EQ(r.status, TraceIoStatus::OpenFailed);
    EXPECT_NE(r.sys_errno, 0);
}

TEST(TraceCodec, CorruptPayloadIsDetectedOrHarmless)
{
    const std::string path = tmpPath("codec_corrupt.rnrt");
    const TraceBuffer buf = fuzzTrace(21, 5000);
    ASSERT_TRUE(writeTraceFileV2(path, buf));

    // Flip a byte in the middle of the first block's payload.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(16 + 8 + 40); // header + block header + into payload
        char c = 0;
        f.read(&c, 1);
        f.seekp(16 + 8 + 40);
        c = static_cast<char>(c ^ 0x5a);
        f.write(&c, 1);
    }
    TraceBuffer out;
    const TraceIoResult r = readAnyTraceFile(path, out);
    // A flipped byte either breaks the varint structure (caught) or
    // alters decoded values; structure corruption must never crash.
    if (!r) {
        EXPECT_TRUE(r.status == TraceIoStatus::CorruptBlock ||
                    r.status == TraceIoStatus::Truncated)
            << toString(r.status);
    }
    std::remove(path.c_str());
}

TEST(TraceCodec, StreamingReaderDeliversBlockByBlock)
{
    const std::string path = tmpPath("codec_stream.rnrt");
    const TraceBuffer buf = fuzzTrace(31, 12345);
    ASSERT_TRUE(writeTraceFileV2(path, buf, 256));

    StreamingTraceReader reader;
    ASSERT_TRUE(reader.open(path));
    std::size_t n = 0;
    while (!reader.done()) {
        const TraceRecord r = reader.take();
        ASSERT_EQ(r.addr, buf.records()[n].addr) << "record " << n;
        ++n;
    }
    EXPECT_EQ(n, buf.size());
    EXPECT_FALSE(reader.error());
    std::remove(path.c_str());
}

TEST(TraceBufferMemory, MemoryBytesTracksRecordCount)
{
    TraceBuffer buf;
    EXPECT_EQ(buf.memoryBytes(), 0u);
    buf.push(TraceRecord::load(0x1000, 1, 0));
    buf.push(TraceRecord::store(0x2000, 2, 5));
    EXPECT_EQ(buf.memoryBytes(), 2 * sizeof(TraceRecord));
}

} // namespace
} // namespace rnr
