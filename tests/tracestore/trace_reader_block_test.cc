/**
 * @file
 * StreamingTraceReader::takeBlock() tests: the batched kernel streams a
 * v2 file run-by-run, so each run must be a zero-copy view of the
 * decoded block, runs must tile the file exactly (block boundaries
 * included), and v1 files must stream the same way through the
 * format-transparent reader.
 */
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/trace_io.h"
#include "tracestore/trace_codec.h"
#include "tracestore/trace_reader.h"

namespace rnr {
namespace {

namespace fs = std::filesystem;

class TraceReaderBlockTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::temp_directory_path() /
                ("rnr_reader_block_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    static TraceBuffer
    makeTrace(std::size_t n)
    {
        TraceBuffer buf;
        buf.push(TraceRecord::control(RnrOp::Init));
        for (std::size_t i = 0; i < n; ++i) {
            if (i % 6 == 0)
                buf.push(TraceRecord::store(
                    0x4000 + Addr(i) * 64,
                    static_cast<std::uint32_t>(i % 9), 1));
            else
                buf.push(TraceRecord::load(
                    0x4000 + Addr(i) * 64,
                    static_cast<std::uint32_t>(i % 9),
                    static_cast<std::uint16_t>(i % 3)));
        }
        buf.push(TraceRecord::control(RnrOp::EndState));
        return buf;
    }

    static void
    expectSameRecord(const TraceRecord &a, const TraceRecord &b,
                     std::size_t i)
    {
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.aux, b.aux) << i;
        EXPECT_EQ(a.pc, b.pc) << i;
        EXPECT_EQ(a.gap, b.gap) << i;
        EXPECT_EQ(a.kind, b.kind) << i;
    }

    std::string dir_;
};

TEST_F(TraceReaderBlockTest, RunsTileAV2FileAcrossBlockBoundaries)
{
    // 64-record blocks and 200+2 records: three full blocks plus a
    // partial tail, so takeBlock() crosses refills repeatedly.
    const TraceBuffer expect = makeTrace(200);
    const std::string path = dir_ + "/t.v2";
    ASSERT_TRUE(bool(writeTraceFileV2(path, expect, 64)));

    StreamingTraceReader reader;
    ASSERT_TRUE(bool(reader.open(path)));

    std::vector<TraceRecord> got;
    std::size_t runs = 0;
    for (;;) {
        std::size_t n = 0;
        const TraceRecord *run = reader.takeBlock(n);
        if (!run) {
            EXPECT_EQ(n, 0u);
            break;
        }
        ASSERT_GT(n, 0u);
        // No run may span a decoded block: the view lives inside one
        // 64-record block.
        EXPECT_LE(n, 64u);
        got.insert(got.end(), run, run + n);
        ++runs;
    }

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameRecord(got[i], expect.records()[i], i);
    EXPECT_GE(runs, 4u);
    EXPECT_TRUE(reader.done());
    EXPECT_FALSE(reader.error());
    EXPECT_EQ(reader.recordsDelivered(), expect.size());
}

TEST_F(TraceReaderBlockTest, TakeAndTakeBlockInterleaveAcrossRefills)
{
    const TraceBuffer expect = makeTrace(150);
    const std::string path = dir_ + "/t.v2";
    ASSERT_TRUE(bool(writeTraceFileV2(path, expect, 32)));

    StreamingTraceReader reader;
    ASSERT_TRUE(bool(reader.open(path)));

    std::vector<TraceRecord> got;
    bool block_turn = false;
    while (!reader.done()) {
        if (block_turn) {
            std::size_t n = 0;
            const TraceRecord *run = reader.takeBlock(n);
            ASSERT_NE(run, nullptr);
            got.insert(got.end(), run, run + n);
        } else {
            // A few per-record takes, then switch back to runs —
            // mid-block, so the next run is a partial view.
            for (int i = 0; i < 5 && !reader.done(); ++i)
                got.push_back(reader.take());
        }
        block_turn = !block_turn;
    }

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameRecord(got[i], expect.records()[i], i);
    EXPECT_EQ(reader.recordsDelivered(), expect.size());
}

TEST_F(TraceReaderBlockTest, V1FilesStreamInChunkedRuns)
{
    const TraceBuffer expect = makeTrace(300);
    const std::string path = dir_ + "/t.v1";
    ASSERT_TRUE(bool(writeTraceFile(path, expect)));

    StreamingTraceReader reader;
    ASSERT_TRUE(bool(reader.open(path)));

    std::vector<TraceRecord> got;
    for (;;) {
        std::size_t n = 0;
        const TraceRecord *run = reader.takeBlock(n);
        if (!run)
            break;
        got.insert(got.end(), run, run + n);
    }
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameRecord(got[i], expect.records()[i], i);
}

TEST_F(TraceReaderBlockTest, EmptyTraceYieldsNoRuns)
{
    const TraceBuffer empty;
    const std::string path = dir_ + "/e.v2";
    ASSERT_TRUE(bool(writeTraceFileV2(path, empty, 64)));

    StreamingTraceReader reader;
    ASSERT_TRUE(bool(reader.open(path)));
    std::size_t n = 5;
    EXPECT_EQ(reader.takeBlock(n), nullptr);
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(reader.done());
}

} // namespace
} // namespace rnr
