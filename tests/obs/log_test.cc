/**
 * @file
 * Unit tests for the structured JSONL logger (src/obs/log.h): record
 * shape (parseable JSON with ts_us/level/comp/pid plus every kv
 * overload), RNR_LOG_LEVEL threshold filtering, the RNR_LOG sink
 * selection ("0" = off, path = append file), and threshold parsing.
 *
 * Each test points RNR_LOG at its own temp file and calls
 * logReconfigureForTest() so the cached env state is re-read; TearDown
 * restores the default stderr sink for whatever runs next.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/json_parse.h"
#include "obs/log.h"

namespace rnr {
namespace obs {
namespace {

struct LogFixture : ::testing::Test {
    std::string path_;

    void
    SetUp() override
    {
        const std::string name = ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name();
        path_ = ::testing::TempDir() + "obs_log_" + name + ".jsonl";
        std::remove(path_.c_str());
        setenv("RNR_LOG", path_.c_str(), 1);
        unsetenv("RNR_LOG_LEVEL");
        logReconfigureForTest();
    }

    void
    TearDown() override
    {
        unsetenv("RNR_LOG");
        unsetenv("RNR_LOG_LEVEL");
        logReconfigureForTest();
        std::remove(path_.c_str());
    }

    std::string
    slurp() const
    {
        std::ifstream in(path_);
        std::stringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }
};

TEST_F(LogFixture, RecordIsOneParseableJsonObjectPerLine)
{
    LogLine(LogLevel::Warn, "test")
        .msg("hello world")
        .kv("cell", std::string("pagerank/urand"))
        .kv("literal", "raw")
        .kv("big", std::uint64_t{1} << 40)
        .kv("negative", std::int64_t{-7})
        .kv("small", 3)
        .kv("width", 2u)
        .kv("ratio", 0.5)
        .kvBool("cached", true);

    const std::string body = slurp();
    ASSERT_FALSE(body.empty());
    ASSERT_EQ(body.back(), '\n');
    ASSERT_EQ(body.find('\n'), body.size() - 1) << "exactly one line";

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(body.substr(0, body.size() - 1), v, &err))
        << err << "\n" << body;
    EXPECT_GT(v.find("ts_us")->asU64(), 0u);
    EXPECT_EQ(v.find("level")->text, "warn");
    EXPECT_EQ(v.find("comp")->text, "test");
    EXPECT_GT(v.find("pid")->asU64(), 0u);
    EXPECT_EQ(v.find("msg")->text, "hello world");
    EXPECT_EQ(v.find("cell")->text, "pagerank/urand");
    EXPECT_EQ(v.find("literal")->text, "raw");
    EXPECT_EQ(v.find("big")->asU64(), std::uint64_t{1} << 40);
    EXPECT_EQ(v.find("negative")->asDouble(), -7.0);
    EXPECT_EQ(v.find("small")->asU64(), 3u);
    EXPECT_EQ(v.find("width")->asU64(), 2u);
    EXPECT_EQ(v.find("ratio")->asDouble(), 0.5);
    EXPECT_TRUE(v.find("cached")->boolean);
}

TEST_F(LogFixture, RecordsBelowTheThresholdAreDropped)
{
    setenv("RNR_LOG_LEVEL", "error", 1);
    logReconfigureForTest();
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));

    LogLine(LogLevel::Info, "test").msg("dropped");
    LogLine(LogLevel::Warn, "test").msg("dropped too");
    LogLine(LogLevel::Error, "test").msg("kept");

    const std::string body = slurp();
    EXPECT_EQ(body.find("dropped"), std::string::npos) << body;
    EXPECT_NE(body.find("kept"), std::string::npos) << body;
}

TEST_F(LogFixture, DefaultThresholdIsInfo)
{
    EXPECT_EQ(logThreshold(), LogLevel::Info);
    LogLine(LogLevel::Debug, "test").msg("below default");
    LogLine(LogLevel::Info, "test").msg("at default");
    const std::string body = slurp();
    EXPECT_EQ(body.find("below default"), std::string::npos);
    EXPECT_NE(body.find("at default"), std::string::npos);
}

TEST_F(LogFixture, RnrLogZeroTurnsTheSinkOff)
{
    setenv("RNR_LOG", "0", 1);
    logReconfigureForTest();
    EXPECT_EQ(logThreshold(), LogLevel::Off);
    EXPECT_FALSE(logEnabled(LogLevel::Error));
    LogLine(LogLevel::Error, "test").msg("into the void");
    EXPECT_EQ(slurp().find("void"), std::string::npos);
}

TEST_F(LogFixture, LevelParsingAcceptsAliasesAndDefaultsUnknownToInfo)
{
    setenv("RNR_LOG_LEVEL", "warning", 1);
    logReconfigureForTest();
    EXPECT_EQ(logThreshold(), LogLevel::Warn) << "'warning' alias";

    setenv("RNR_LOG_LEVEL", "0", 1);
    logReconfigureForTest();
    EXPECT_EQ(logThreshold(), LogLevel::Off);

    setenv("RNR_LOG_LEVEL", "bogus", 1);
    logReconfigureForTest();
    EXPECT_EQ(logThreshold(), LogLevel::Info);
}

TEST_F(LogFixture, MultipleRecordsAppendOnePerLine)
{
    for (int i = 0; i < 3; ++i)
        LogLine(LogLevel::Info, "test").msg("rec").kv("i", i);
    std::ifstream in(path_);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(line, v, &err)) << err << "\n" << line;
    }
    EXPECT_EQ(lines, 3);
}

TEST_F(LogFixture, DisabledLineSkipsAllFormatting)
{
    setenv("RNR_LOG_LEVEL", "off", 1);
    logReconfigureForTest();
    // Must be harmless (and cheap): every builder call no-ops.
    LogLine(LogLevel::Error, "test")
        .msg("never")
        .kv("key", std::string(1 << 20, 'x'));
    EXPECT_TRUE(slurp().empty());
}

TEST_F(LogFixture, SpanScopeStampsEveryRecordInsideIt)
{
    EXPECT_EQ(currentSpanId(), 0u);
    LogLine(LogLevel::Info, "test").msg("outside");

    std::uint64_t outer_id = 0, inner_id = 0;
    {
        SpanScope outer;
        outer_id = outer.id();
        EXPECT_NE(outer_id, 0u);
        EXPECT_EQ(currentSpanId(), outer_id);
        LogLine(LogLevel::Info, "test").msg("outer");
        {
            SpanScope inner; // nests: ids are distinct, restore works
            inner_id = inner.id();
            EXPECT_NE(inner_id, outer_id);
            LogLine(LogLevel::Info, "test").msg("inner");
        }
        EXPECT_EQ(currentSpanId(), outer_id);
    }
    EXPECT_EQ(currentSpanId(), 0u);

    std::istringstream lines(slurp());
    std::string line;
    while (std::getline(lines, line)) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(parseJson(line, v, &err)) << err << "\n" << line;
        const std::string msg = v.find("msg")->text;
        const JsonValue *span = v.find("span");
        if (msg == "outside") {
            EXPECT_EQ(span, nullptr); // no ambient scope, no field
        } else if (msg == "outer") {
            ASSERT_NE(span, nullptr);
            EXPECT_EQ(span->asU64(), outer_id);
        } else if (msg == "inner") {
            ASSERT_NE(span, nullptr);
            EXPECT_EQ(span->asU64(), inner_id);
        }
    }
}

} // namespace
} // namespace obs
} // namespace rnr
