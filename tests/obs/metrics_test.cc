/**
 * @file
 * Unit tests for the process-wide metrics registry (src/obs/metrics.h):
 * exact totals under concurrent bumps, snapshot coherence while other
 * threads keep bumping, the log2 histogram's bucket edges, and golden
 * copies of both expositions (rnr-metrics-v1 JSON and Prometheus text).
 */
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/json_parse.h"
#include "obs/metrics.h"

namespace rnr {
namespace obs {
namespace {

TEST(Metrics, ConcurrentCounterBumpsLoseNothing)
{
    MetricsRegistry::instance().resetForTest();
    Counter *c = MetricsRegistry::instance().counter(
        "rnr_test_concurrent_total");
    ASSERT_NE(c, nullptr);

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kBumps = 20000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([c] {
            for (std::uint64_t i = 0; i < kBumps; ++i)
                c->add();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c->value(), kThreads * kBumps);
}

TEST(Metrics, LookupReturnsTheSamePointerEveryTime)
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    Counter *a = reg.counter("rnr_test_same_total");
    Counter *b = reg.counter("rnr_test_same_total");
    EXPECT_EQ(a, b) << "call sites cache the pointer; it must be stable";
    EXPECT_NE(a, reg.counter("rnr_test_other_total"));
}

TEST(Metrics, GaugeSetAddSub)
{
    MetricsRegistry::instance().resetForTest();
    Gauge *g = MetricsRegistry::instance().gauge("rnr_test_depth");
    ASSERT_NE(g, nullptr);
    g->set(10);
    g->add(5);
    g->sub(20);
    EXPECT_EQ(g->value(), -5) << "gauges are signed";
}

TEST(Metrics, SnapshotWhileBumpingIsMonotonic)
{
    MetricsRegistry::instance().resetForTest();
    Counter *c = MetricsRegistry::instance().counter(
        "rnr_test_racing_total");
    ASSERT_NE(c, nullptr);

    constexpr std::uint64_t kBumps = 200000;
    std::thread writer([c] {
        for (std::uint64_t i = 0; i < kBumps; ++i)
            c->add();
    });
    std::uint64_t prev = 0;
    for (int i = 0; i < 50; ++i) {
        const MetricsSnapshot snap =
            MetricsRegistry::instance().snapshot();
        std::uint64_t seen = 0;
        for (const auto &[name, v] : snap.counters)
            if (name == "rnr_test_racing_total")
                seen = v;
        EXPECT_GE(seen, prev) << "snapshots must never run backwards";
        EXPECT_LE(seen, kBumps);
        prev = seen;
    }
    writer.join();
    EXPECT_EQ(c->value(), kBumps);
}

TEST(Metrics, HistogramBucketIndexIsBitWidth)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}), 64u);
}

TEST(Metrics, HistogramBucketUpperBoundsArePowerOfTwoMinusOne)
{
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(Histogram::bucketUpperBound(3), 7u);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1023u);
    EXPECT_EQ(Histogram::bucketUpperBound(63),
              (std::uint64_t{1} << 63) - 1);
    EXPECT_EQ(Histogram::bucketUpperBound(64), ~std::uint64_t{0});
}

TEST(Metrics, HistogramObserveLandsValuesOnTheRightEdges)
{
    MetricsRegistry::instance().resetForTest();
    Histogram *h = MetricsRegistry::instance().histogram(
        "rnr_test_edges_us");
    ASSERT_NE(h, nullptr);
    // One observation per edge of the first four buckets, plus both
    // sides of the 3|4 boundary.
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull})
        h->observe(v);
    EXPECT_EQ(h->count(), 7u);
    EXPECT_EQ(h->sum(), 25u);
    EXPECT_EQ(h->bucketCount(0), 1u); // {0}
    EXPECT_EQ(h->bucketCount(1), 1u); // {1}
    EXPECT_EQ(h->bucketCount(2), 2u); // {2, 3}
    EXPECT_EQ(h->bucketCount(3), 2u); // {4, 7}
    EXPECT_EQ(h->bucketCount(4), 1u); // {8}
    EXPECT_EQ(h->bucketCount(5), 0u);
}

TEST(Metrics, SnapshotTruncatesHistogramAfterLastNonEmptyBucket)
{
    MetricsRegistry::instance().resetForTest();
    Histogram *h = MetricsRegistry::instance().histogram(
        "rnr_test_truncate_us");
    ASSERT_NE(h, nullptr);
    h->observe(5); // bucket 3 (upper bound 7)
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    const MetricsSnapshot::Hist *hs = nullptr;
    for (const MetricsSnapshot::Hist &x : snap.histograms)
        if (x.name == "rnr_test_truncate_us")
            hs = &x;
    ASSERT_NE(hs, nullptr);
    ASSERT_EQ(hs->buckets.size(), 4u) << "buckets 0..3, nothing after";
    EXPECT_EQ(hs->buckets.back().first, 7u);
    EXPECT_EQ(hs->buckets.back().second, 1u);
}

/** Hand-built snapshot shared by both golden-exposition tests. */
MetricsSnapshot
goldenSnapshot()
{
    MetricsSnapshot snap;
    snap.counters = {{"rnr_a_total", 3}, {"rnr_b_total", 0}};
    snap.gauges = {{"rnr_depth", -2}};
    MetricsSnapshot::Hist h;
    h.name = "rnr_lat_us";
    h.count = 3;
    h.sum = 9;
    h.buckets = {{0, 1}, {1, 0}, {3, 2}};
    snap.histograms = {h};
    return snap;
}

TEST(Metrics, GoldenJsonExposition)
{
    EXPECT_EQ(
        metricsJsonFrom(goldenSnapshot()),
        "{\"schema\": \"rnr-metrics-v1\", "
        "\"counters\": {\"rnr_a_total\": 3, \"rnr_b_total\": 0}, "
        "\"gauges\": {\"rnr_depth\": -2}, "
        "\"histograms\": {\"rnr_lat_us\": {\"count\": 3, \"sum\": 9, "
        "\"buckets\": [[0, 1], [1, 0], [3, 2]]}}}");
}

TEST(Metrics, GoldenPrometheusExposition)
{
    EXPECT_EQ(metricsPrometheusTextFrom(goldenSnapshot()),
              "# TYPE rnr_a_total counter\n"
              "rnr_a_total 3\n"
              "# TYPE rnr_b_total counter\n"
              "rnr_b_total 0\n"
              "# TYPE rnr_depth gauge\n"
              "rnr_depth -2\n"
              "# TYPE rnr_lat_us histogram\n"
              "rnr_lat_us_bucket{le=\"0\"} 1\n"
              "rnr_lat_us_bucket{le=\"1\"} 1\n"
              "rnr_lat_us_bucket{le=\"3\"} 3\n"
              "rnr_lat_us_bucket{le=\"+Inf\"} 3\n"
              "rnr_lat_us_sum 9\n"
              "rnr_lat_us_count 3\n");
}

TEST(Metrics, LiveJsonExpositionRoundTripsThroughTheParser)
{
    MetricsRegistry::instance().resetForTest();
    Counter *c = MetricsRegistry::instance().counter(
        "rnr_test_roundtrip_total");
    ASSERT_NE(c, nullptr);
    c->add(42);

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(metricsJson(), v, &err)) << err;
    const JsonValue *schema = v.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, "rnr-metrics-v1");
    const JsonValue *counters = v.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *rt = counters->find("rnr_test_roundtrip_total");
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->asU64(), 42u);
}

TEST(Metrics, ResetForTestZeroesWithoutInvalidatingPointers)
{
    Counter *c = MetricsRegistry::instance().counter(
        "rnr_test_reset_total");
    ASSERT_NE(c, nullptr);
    c->add(7);
    MetricsRegistry::instance().resetForTest();
    EXPECT_EQ(c->value(), 0u);
    c->add(1); // the old pointer must still be live
    EXPECT_EQ(c->value(), 1u);
    EXPECT_EQ(MetricsRegistry::instance().counter("rnr_test_reset_total"),
              c);
}

} // namespace
} // namespace obs
} // namespace rnr
