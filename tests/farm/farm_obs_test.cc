/**
 * @file
 * Farm observability end-to-end tests, run against a real FarmServer
 * with real worker processes (same harness as farm_e2e_test.cc):
 *
 *  - the daemon's `metrics` request reconciles EXACTLY with the sweep's
 *    own JSON stats — every cell the sweep reports done/simulated/
 *    cached shows up in the scraped rnr_farm_* counters, no more, no
 *    less — and the Prometheus rendering serves the same numbers;
 *  - a traced submit (trace_dir) writes the daemon span log plus one
 *    worker Perfetto file per cell, and mergeFarmTrace() folds them
 *    into a single timeline carrying both the daemon lanes (pid 0)
 *    and the worker lanes (pid 1000+span).
 */
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "farm/farm_client.h"
#include "farm/farm_server.h"
#include "farm/farm_trace.h"
#include "harness/json_parse.h"
#include "harness/result_cache.h"
#include "harness/sweep.h"
#include "obs/metrics.h"
#include "tracestore/trace_store.h"

#ifndef _WIN32

namespace rnr {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

struct FarmObsFixture : ::testing::Test {
    std::string dir_, socket_, cache_;
    FarmServer *server_ = nullptr;
    std::thread serve_thread_;

    void
    SetUp() override
    {
        const std::string name = ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name();
        dir_ = ::testing::TempDir() + "farm_obs_" + name;
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        socket_ = dir_ + "/farmd.sock";
        cache_ = dir_ + "/results.cache";
        setenv("RNR_CACHE", "1", 1);
        setenv("RNR_CACHE_FILE", cache_.c_str(), 1);
        setenv("RNR_TRACE_DIR", (dir_ + "/traces").c_str(), 1);
        setenv("RNR_PROGRESS", "0", 1);
        unsetenv("RNR_FARM");
        unsetenv("RNR_JOBS");
        unsetenv("RNR_JSON_OUT");
        ResultCache::instance().clearForTest();
        TraceStore::instance().resetForTest();
        // Exact-total assertions need a clean slate; the registry is
        // process-wide and earlier farm tests bump the same counters.
        obs::MetricsRegistry::instance().resetForTest();
    }

    void
    TearDown() override
    {
        stopServer();
        setenv("RNR_CACHE", "0", 1);
        ResultCache::instance().clearForTest();
        TraceStore::instance().resetForTest();
        fs::remove_all(dir_);
    }

    void
    startServer(unsigned workers)
    {
        FarmOptions o;
        o.socket_path = socket_;
        o.workers = workers;
        o.timeout_sec = 120.0;
        server_ = new FarmServer(o);
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
        serve_thread_ = std::thread([this] { server_->serve(); });
    }

    FarmTotals
    stopServer()
    {
        FarmTotals totals;
        if (!server_)
            return totals;
        server_->requestStop();
        if (serve_thread_.joinable())
            serve_thread_.join();
        totals = server_->totals();
        delete server_;
        server_ = nullptr;
        return totals;
    }

    static ExperimentConfig
    cell(PrefetcherKind kind, std::uint32_t window = 0)
    {
        ExperimentConfig cfg;
        cfg.app = "pagerank";
        cfg.input = "amazon";
        cfg.iterations = 1;
        cfg.cores = 1;
        cfg.prefetcher = kind;
        cfg.window_size = window;
        return cfg;
    }

    static std::vector<ExperimentConfig>
    smallBatch()
    {
        return {cell(PrefetcherKind::None), cell(PrefetcherKind::Stride),
                cell(PrefetcherKind::Rnr, 64),
                cell(PrefetcherKind::Rnr, 96)};
    }

    SweepStats
    farmSweep(const std::vector<ExperimentConfig> &cells)
    {
        SweepOptions opts;
        opts.progress = 0;
        opts.farm = socket_;
        opts.label = "farm-obs";
        SweepRunner runner(opts);
        runner.add(cells);
        runner.run();
        return runner.stats();
    }

    /** Scrapes the daemon and returns the parsed rnr-metrics-v1 doc. */
    JsonValue
    scrape()
    {
        FarmClient client;
        std::string error, out;
        EXPECT_TRUE(client.connect(socket_, &error)) << error;
        EXPECT_TRUE(client.metrics(out, &error)) << error;
        JsonValue doc;
        std::string err;
        EXPECT_TRUE(parseJson(out, doc, &err)) << err << "\n" << out;
        return doc;
    }

    static std::uint64_t
    counter(const JsonValue &doc, const char *name)
    {
        const JsonValue *counters = doc.find("counters");
        if (!counters)
            return ~std::uint64_t{0};
        const JsonValue *c = counters->find(name);
        return c ? c->asU64() : ~std::uint64_t{0};
    }
};

TEST_F(FarmObsFixture, ScrapedMetricsReconcileExactlyWithSweepStats)
{
    startServer(2);
    const std::vector<ExperimentConfig> cells = smallBatch();

    const SweepStats cold = farmSweep(cells);
    ASSERT_EQ(cold.cells, cells.size());
    ASSERT_EQ(cold.simulated, cells.size());
    ASSERT_EQ(cold.poisoned, 0u);

    JsonValue doc = scrape();
    ASSERT_EQ(doc.find("schema")->text, "rnr-metrics-v1");
    EXPECT_EQ(counter(doc, "rnr_farm_cells_done_total"), cold.cells);
    EXPECT_EQ(counter(doc, "rnr_farm_cells_simulated_total"),
              cold.simulated);
    EXPECT_EQ(counter(doc, "rnr_farm_cells_cached_total"), 0u);
    EXPECT_EQ(counter(doc, "rnr_farm_cells_poisoned_total"), 0u);
    EXPECT_EQ(counter(doc, "rnr_farm_worker_spawns_total"), 2u);
    EXPECT_EQ(counter(doc, "rnr_farm_worker_deaths_total"), 0u);
    EXPECT_GT(counter(doc, "rnr_farm_frame_bytes_in_total"), 0u);
    EXPECT_GT(counter(doc, "rnr_farm_frame_bytes_out_total"), 0u);

    // Every simulated cell contributes exactly one latency observation.
    const JsonValue *hists = doc.find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *lat = hists->find("rnr_farm_cell_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asU64(), cold.simulated);

    // Warm resubmit: the client memo is cleared so the batch really
    // crosses the socket and is answered from the daemon's cache.
    ResultCache::instance().clearForTest();
    const SweepStats warm = farmSweep(cells);
    ASSERT_EQ(warm.cache_hits, cells.size());
    ASSERT_EQ(warm.simulated, 0u);

    doc = scrape();
    EXPECT_EQ(counter(doc, "rnr_farm_cells_done_total"),
              cold.cells + warm.cells);
    EXPECT_EQ(counter(doc, "rnr_farm_cells_simulated_total"),
              cold.simulated);
    EXPECT_EQ(counter(doc, "rnr_farm_cells_cached_total"),
              warm.cache_hits);

    // The daemon's own totals must agree with what we scraped.
    const FarmTotals totals = stopServer();
    EXPECT_EQ(totals.done, cold.cells + warm.cells);
    EXPECT_EQ(totals.simulated, cold.simulated);
    EXPECT_EQ(totals.cached, warm.cache_hits);
}

TEST_F(FarmObsFixture, PrometheusRenderingServesTheSameNumbers)
{
    startServer(2);
    const SweepStats st = farmSweep({cell(PrefetcherKind::None)});
    ASSERT_EQ(st.simulated, 1u);

    FarmClient client;
    std::string error, text;
    ASSERT_TRUE(client.connect(socket_, &error)) << error;
    ASSERT_TRUE(client.metrics(text, &error, /*prometheus=*/true))
        << error;
    EXPECT_NE(
        text.find("# TYPE rnr_farm_cells_done_total counter\n"
                  "rnr_farm_cells_done_total 1\n"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE rnr_farm_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("rnr_farm_cell_latency_us_count 1"),
              std::string::npos);
}

TEST_F(FarmObsFixture, TracedSubmitMergesIntoOnePerfettoTimeline)
{
    startServer(2);
    const std::string trace_dir = dir_ + "/trace";
    fs::create_directories(trace_dir);

    FarmClient client;
    std::string error;
    ASSERT_TRUE(client.connect(socket_, &error)) << error;
    const std::vector<ExperimentConfig> cells = {
        cell(PrefetcherKind::None), cell(PrefetcherKind::Rnr, 64)};
    ASSERT_TRUE(client.submit(cells, {}, &error, trace_dir)) << error;

    std::size_t received = 0;
    while (received < cells.size()) {
        FarmClient::Reply reply;
        ASSERT_TRUE(client.next(reply, &error)) << error;
        if (reply.batch_done)
            continue;
        EXPECT_EQ(reply.outcome.status, CellOutcome::Status::Done);
        ++received;
    }

    // Daemon side: the span log carries submit/dispatch/done for both
    // cells.  Worker side: one Perfetto file per span (cell ids are
    // assigned from 1 in submit order).
    const std::string span_log = trace_dir + "/daemon_spans.jsonl";
    ASSERT_TRUE(fs::exists(span_log));
    const std::string spans = slurp(span_log);
    EXPECT_NE(spans.find("\"ev\": \"submit\""), std::string::npos);
    EXPECT_NE(spans.find("\"ev\": \"dispatch\""), std::string::npos);
    EXPECT_NE(spans.find("\"ev\": \"done\""), std::string::npos);
    ASSERT_TRUE(fs::exists(trace_dir + "/span_1.json"));
    ASSERT_TRUE(fs::exists(trace_dir + "/span_2.json"));

    const std::string merged = dir_ + "/merged.json";
    std::string merge_err;
    ASSERT_TRUE(mergeFarmTrace(trace_dir, merged, &merge_err))
        << merge_err;

    const std::string body = slurp(merged);
    // One loadable document...
    JsonValue doc;
    std::string parse_err;
    ASSERT_TRUE(parseJson(body, doc, &parse_err)) << parse_err;
    ASSERT_TRUE(doc.find("traceEvents")->isArray());
    EXPECT_EQ(doc.find("otherData")->find("spans")->asU64(), 2u);
    // ...with daemon lanes (pid 0)...
    EXPECT_NE(body.find("\"rnr_farmd\""), std::string::npos);
    EXPECT_NE(body.find("queue-wait"), std::string::npos);
    EXPECT_NE(body.find("exec "), std::string::npos);
    // ...and both worker lanes re-homed to pid 1000+span.
    EXPECT_NE(body.find("\"pid\": 1001"), std::string::npos);
    EXPECT_NE(body.find("\"pid\": 1002"), std::string::npos);

    // A traced cell always dispatches (the trace is the point), so the
    // daemon counts both as simulated even though one prefetcher-none
    // cell would otherwise be answerable from cache on a resubmit.
    const FarmTotals totals = stopServer();
    EXPECT_EQ(totals.simulated, cells.size());
}

TEST_F(FarmObsFixture, MergeWithoutSpanLogFailsTyped)
{
    const std::string empty_dir = dir_ + "/no_spans";
    fs::create_directories(empty_dir);
    std::string error;
    EXPECT_FALSE(
        mergeFarmTrace(empty_dir, dir_ + "/out.json", &error));
    EXPECT_NE(error.find("no daemon span log"), std::string::npos)
        << error;
}

} // namespace
} // namespace rnr

#endif // !_WIN32
