/**
 * @file
 * End-to-end tests for the simulation farm: a real FarmServer serving
 * on a thread, real worker processes (fork/exec of this test binary —
 * see farm_test_main.cc), and real sweeps submitted through
 * SweepOptions::farm.  What the ISSUE demands is proved here:
 *
 *  - a farm sweep's JSON export is byte-identical to the in-process
 *    export (RNR_JSON_HOST=0 strips the host-cost object);
 *  - SIGKILLing a worker mid-batch loses nothing: the cell is retried
 *    on a respawned worker and the export stays identical;
 *  - a cell that abort()s is retried once, then quarantined as a
 *    poisoned result while the rest of the batch completes;
 *  - a hung cell trips the deadline and is quarantined the same way;
 *  - a killed daemon resumes mid-sweep from the persisted cache file:
 *    the re-run performs zero simulations and exports identical bytes.
 */
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "farm/farm_client.h"
#include "farm/farm_server.h"
#include "harness/result_cache.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "tracestore/trace_store.h"

#ifndef _WIN32

namespace rnr {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

struct FarmFixture : ::testing::Test {
    std::string dir_, socket_, cache_;
    FarmServer *server_ = nullptr;
    std::thread serve_thread_;

    void
    SetUp() override
    {
        const std::string name = ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name();
        dir_ = ::testing::TempDir() + "farm_" + name;
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        socket_ = dir_ + "/farmd.sock";
        cache_ = dir_ + "/results.cache";
        // Workers inherit this environment across fork/exec: they share
        // the cache file and trace corpus with the daemon and client.
        setenv("RNR_CACHE", "1", 1);
        setenv("RNR_CACHE_FILE", cache_.c_str(), 1);
        setenv("RNR_TRACE_DIR", (dir_ + "/traces").c_str(), 1);
        setenv("RNR_PROGRESS", "0", 1);
        unsetenv("RNR_FARM");
        unsetenv("RNR_JOBS");
        unsetenv("RNR_JSON_OUT");
        unsetenv("RNR_FARM_TEST_ABORT_KEY");
        unsetenv("RNR_FARM_TEST_HANG_KEY");
        ResultCache::instance().clearForTest();
        TraceStore::instance().resetForTest();
    }

    void
    TearDown() override
    {
        stopServer();
        unsetenv("RNR_FARM_TEST_ABORT_KEY");
        unsetenv("RNR_FARM_TEST_HANG_KEY");
        setenv("RNR_CACHE", "0", 1);
        ResultCache::instance().clearForTest();
        TraceStore::instance().resetForTest();
        fs::remove_all(dir_);
    }

    void
    startServer(unsigned workers, double timeout_sec = 120.0)
    {
        FarmOptions o;
        o.socket_path = socket_;
        o.workers = workers;
        o.timeout_sec = timeout_sec;
        server_ = new FarmServer(o);
        std::string error;
        ASSERT_TRUE(server_->start(&error)) << error;
        serve_thread_ = std::thread([this] { server_->serve(); });
    }

    /** Stops serve(), joins, and returns the final totals. */
    FarmTotals
    stopServer()
    {
        FarmTotals totals;
        if (!server_)
            return totals;
        server_->requestStop();
        if (serve_thread_.joinable())
            serve_thread_.join();
        totals = server_->totals();
        delete server_;
        server_ = nullptr;
        return totals;
    }

    static ExperimentConfig
    cell(PrefetcherKind kind, std::uint32_t window = 0)
    {
        ExperimentConfig cfg;
        cfg.app = "pagerank";
        cfg.input = "amazon";
        cfg.iterations = 1;
        cfg.cores = 1;
        cfg.prefetcher = kind;
        cfg.window_size = window;
        return cfg;
    }

    static std::vector<ExperimentConfig>
    smallBatch()
    {
        return {cell(PrefetcherKind::None), cell(PrefetcherKind::Stride),
                cell(PrefetcherKind::Rnr, 64),
                cell(PrefetcherKind::Rnr, 96)};
    }

    SweepStats
    farmSweep(const std::vector<ExperimentConfig> &cells,
              const std::string &json_out = "")
    {
        SweepOptions opts;
        opts.progress = 0;
        opts.farm = socket_;
        opts.json_out = json_out;
        opts.json_host = 0;
        opts.label = "farm-e2e";
        SweepRunner runner(opts);
        runner.add(cells);
        runner.run();
        return runner.stats();
    }
};

TEST_F(FarmFixture, FarmSweepMatchesInProcessSweepByteForByte)
{
    startServer(2);
    const std::vector<ExperimentConfig> cells = smallBatch();

    const std::string farm_json = dir_ + "/farm.json";
    const SweepStats st = farmSweep(cells, farm_json);
    EXPECT_EQ(st.cells, cells.size());
    EXPECT_EQ(st.simulated, cells.size()) << "cold farm should simulate";
    EXPECT_EQ(st.poisoned, 0u);

    // In-process reference run, fully cold: fresh cache file and memo.
    const std::string cache2 = dir_ + "/results2.cache";
    setenv("RNR_CACHE_FILE", cache2.c_str(), 1);
    ResultCache::instance().clearForTest();
    SweepOptions opts;
    opts.progress = 0;
    opts.jobs = 4;
    opts.json_out = dir_ + "/inproc.json";
    opts.json_host = 0;
    opts.label = "farm-e2e";
    SweepRunner inproc(opts);
    inproc.add(cells);
    inproc.run();
    EXPECT_EQ(inproc.stats().simulated, cells.size());

    const std::string farm_bytes = slurp(farm_json);
    ASSERT_FALSE(farm_bytes.empty());
    EXPECT_EQ(farm_bytes, slurp(opts.json_out))
        << "farm and in-process exports diverged";

    const FarmTotals totals = stopServer();
    EXPECT_EQ(totals.simulated, cells.size());
    EXPECT_EQ(totals.poisoned, 0u);
}

TEST_F(FarmFixture, WarmResubmitPerformsZeroSimulations)
{
    startServer(2);
    const std::vector<ExperimentConfig> cells = smallBatch();
    const SweepStats cold = farmSweep(cells);
    EXPECT_EQ(cold.simulated, cells.size());

    // The client memo is warm too; clear it so the resubmit really
    // crosses the socket and is answered by the daemon's cache.
    ResultCache::instance().clearForTest();
    const SweepStats warm = farmSweep(cells);
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cache_hits, cells.size());

    const FarmTotals totals = stopServer();
    EXPECT_EQ(totals.simulated, cells.size());
    EXPECT_GE(totals.cached, cells.size());
}

TEST_F(FarmFixture, SigkilledWorkerMidBatchLosesNothing)
{
    startServer(2);
    const std::vector<ExperimentConfig> cells = {
        cell(PrefetcherKind::None),      cell(PrefetcherKind::Stride),
        cell(PrefetcherKind::Rnr, 32),   cell(PrefetcherKind::Rnr, 64),
        cell(PrefetcherKind::Rnr, 96),   cell(PrefetcherKind::Rnr, 128),
        cell(PrefetcherKind::Rnr, 192),  cell(PrefetcherKind::Rnr, 256)};

    // Assassinate one worker shortly after the batch lands.  Whether it
    // was mid-cell or idle, the batch must complete with every result.
    const std::vector<int> pids = server_->workerPids();
    ASSERT_EQ(pids.size(), 2u);
    std::thread killer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ::kill(pids[0], SIGKILL);
    });

    const std::string farm_json = dir_ + "/killed.json";
    const SweepStats st = farmSweep(cells, farm_json);
    killer.join();
    EXPECT_EQ(st.cells, cells.size());
    EXPECT_EQ(st.poisoned, 0u);
    EXPECT_EQ(st.simulated + st.cache_hits, cells.size());

    const FarmTotals totals = stopServer();
    EXPECT_GE(totals.worker_deaths, 1u);

    // Determinism check: a cold in-process run exports the same bytes.
    const std::string cache2 = dir_ + "/results2.cache";
    setenv("RNR_CACHE_FILE", cache2.c_str(), 1);
    ResultCache::instance().clearForTest();
    SweepOptions opts;
    opts.progress = 0;
    opts.jobs = 4;
    opts.json_out = dir_ + "/inproc.json";
    opts.json_host = 0;
    opts.label = "farm-e2e";
    SweepRunner inproc(opts);
    inproc.add(cells);
    inproc.run();
    EXPECT_EQ(slurp(farm_json), slurp(opts.json_out));
}

TEST_F(FarmFixture, AbortingCellIsRetriedOnceThenQuarantined)
{
    // The marked cell abort()s in the worker before simulating: the
    // daemon must SIGKILL-respawn, retry once, then poison it — while
    // the rest of the batch completes normally.
    setenv("RNR_FARM_TEST_ABORT_KEY", ":w96:", 1);
    startServer(2);
    const std::vector<ExperimentConfig> cells = smallBatch();
    ASSERT_NE(cells[3].key().find(":w96:"), std::string::npos)
        << "test marker no longer matches a cell key: "
        << cells[3].key();

    SweepOptions opts;
    opts.progress = 0;
    opts.farm = socket_;
    opts.label = "farm-e2e";
    SweepRunner runner(opts);
    runner.add(cells);
    const std::vector<ExperimentResult> results = runner.run();

    ASSERT_EQ(results.size(), cells.size());
    EXPECT_EQ(runner.stats().poisoned, 1u);
    EXPECT_EQ(runner.stats().simulated, cells.size() - 1);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_FALSE(results[i].iterations.empty()) << "cell " << i;
    // The poisoned cell comes back config-only: identifiable, no data.
    EXPECT_EQ(results[3].config.key(), cells[3].key());
    EXPECT_TRUE(results[3].iterations.empty());

    // A resubmission is answered from the poison record — no more
    // worker deaths, the cell is not re-run.
    ResultCache::instance().clearForTest();
    SweepRunner again(opts);
    again.add(cells);
    again.run();
    EXPECT_EQ(again.stats().poisoned, 1u);

    const FarmTotals totals = stopServer();
    EXPECT_EQ(totals.poisoned, 1u);
    EXPECT_EQ(totals.retried, 1u);
    EXPECT_EQ(totals.worker_deaths, 2u) << "abort + aborted retry";
}

TEST_F(FarmFixture, HungCellTripsTheDeadlineAndIsQuarantined)
{
    // Submit ONLY the hung cell: with no legitimate cell in the batch,
    // a loaded machine cannot push an innocent simulation over the
    // deadline, so the totals below are exact under any ctest -j.  The
    // hung cell still costs two timeouts before it is poisoned.
    setenv("RNR_FARM_TEST_HANG_KEY", ":w96:", 1);
    startServer(2, /*timeout_sec=*/4.0);
    const std::vector<ExperimentConfig> cells = {smallBatch().back()};
    ASSERT_NE(cells[0].key().find(":w96:"), std::string::npos);

    SweepOptions opts;
    opts.progress = 0;
    opts.farm = socket_;
    opts.label = "farm-e2e";
    SweepRunner runner(opts);
    runner.add(cells);
    const std::vector<ExperimentResult> results = runner.run();

    ASSERT_EQ(results.size(), cells.size());
    EXPECT_EQ(runner.stats().poisoned, 1u);
    EXPECT_TRUE(results[0].iterations.empty());

    const FarmTotals totals = stopServer();
    EXPECT_EQ(totals.simulated, 0u);
    EXPECT_EQ(totals.poisoned, 1u);
    EXPECT_EQ(totals.worker_deaths, 2u) << "hang + hung retry";
}

TEST_F(FarmFixture, KilledDaemonResumesFromThePersistedCache)
{
    startServer(2);
    const std::vector<ExperimentConfig> cells = smallBatch();
    const std::string first_json = dir_ + "/first.json";
    const SweepStats first = farmSweep(cells, first_json);
    EXPECT_EQ(first.simulated, cells.size());
    stopServer(); // the "kill": daemon gone, only the cache file survives

    // A fresh daemon + a fresh client memo: the resumed sweep must be
    // answered entirely from the persisted cache file, bit-identically.
    ResultCache::instance().clearForTest();
    startServer(2);
    const std::string resumed_json = dir_ + "/resumed.json";
    const SweepStats resumed = farmSweep(cells, resumed_json);
    EXPECT_EQ(resumed.simulated, 0u)
        << "resume must not repeat finished work";
    EXPECT_EQ(resumed.cache_hits, cells.size());
    EXPECT_EQ(slurp(first_json), slurp(resumed_json));

    const FarmTotals totals = stopServer();
    EXPECT_EQ(totals.simulated, 0u);
    EXPECT_EQ(totals.cached, cells.size());
}

TEST_F(FarmFixture, StatusReportsQueueDepthAndDrainStopsTheDaemon)
{
    startServer(3);
    FarmClient client;
    std::string error;
    ASSERT_TRUE(client.connect(socket_, &error)) << error;

    FarmStatus st;
    ASSERT_TRUE(client.status(st, &error)) << error;
    EXPECT_EQ(st.workers, 3u);
    EXPECT_EQ(st.busy, 0u);
    EXPECT_EQ(st.queued, 0u);
    EXPECT_EQ(st.done, 0u);
    EXPECT_FALSE(st.draining);

    // Warm one cell so there is something for status to count.
    farmSweep({cell(PrefetcherKind::None)});
    ASSERT_TRUE(client.status(st, &error)) << error;
    EXPECT_EQ(st.done, 1u);
    EXPECT_EQ(st.simulated, 1u);

    // Drain: the acknowledgement arrives once idle, then serve() exits
    // on its own — no requestStop needed.
    ASSERT_TRUE(client.drain(&error)) << error;
    serve_thread_.join();
    delete server_;
    server_ = nullptr;
}

} // namespace
} // namespace rnr

#endif // !_WIN32
