/**
 * @file
 * Custom gtest main for the farm tests.  The e2e tests start a real
 * FarmServer, which fork/execs *this binary* as its worker processes
 * (farm/farm_worker.h) — so the worker hook must run before gtest gets
 * a chance to interpret the magic argv.
 */
#include <gtest/gtest.h>

#include "farm/farm_worker.h"

int
main(int argc, char **argv)
{
    rnr::farmWorkerMaybeExec(argc, argv); // no-op unless exec'd as worker
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
