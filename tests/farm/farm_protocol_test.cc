/**
 * @file
 * Unit tests for the farm wire protocol (farm/farm_protocol.h): frame
 * framing over real fds, incremental reassembly under arbitrary
 * fragmentation, the oversized-frame guard, and the config/result
 * codecs whose exactness is what makes farm results bit-identical to
 * in-process ones.
 */
#include <cstdint>
#include <string>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "farm/farm_client.h"
#include "farm/farm_protocol.h"
#include "harness/result_cache.h"

namespace rnr {
namespace {

#ifndef _WIN32
TEST(FarmFramingTest, WriteThenReadRoundTripsOverASocketpair)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    const std::string payload = "{\"type\": \"hello\"}";
    ASSERT_TRUE(farmWriteFrame(sv[0], payload));
    ASSERT_TRUE(farmWriteFrame(sv[0], "")); // empty frames are legal

    std::string got;
    std::string error;
    ASSERT_TRUE(farmReadFrame(sv[1], got, &error)) << error;
    EXPECT_EQ(got, payload);
    ASSERT_TRUE(farmReadFrame(sv[1], got, &error)) << error;
    EXPECT_EQ(got, "");

    // Clean EOF: the peer closing reads as false, not a hang.
    ::close(sv[0]);
    EXPECT_FALSE(farmReadFrame(sv[1], got, &error));
    ::close(sv[1]);
}

TEST(FarmFramingTest, OversizedFrameIsRejectedOnWrite)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    EXPECT_FALSE(farmWriteFrame(sv[0], std::string(kFarmMaxFrame + 1,
                                                   'x')));
    ::close(sv[0]);
    ::close(sv[1]);
}
#endif

TEST(FrameBufferTest, ReassemblesFramesFedOneByteAtATime)
{
    // Two frames, delivered in the worst possible fragmentation.
    std::string wire;
    for (const std::string &p : {std::string("abc"), std::string("")}) {
        const std::uint32_t n = static_cast<std::uint32_t>(p.size());
        char len[4] = {static_cast<char>(n & 0xff),
                       static_cast<char>((n >> 8) & 0xff),
                       static_cast<char>((n >> 16) & 0xff),
                       static_cast<char>((n >> 24) & 0xff)};
        wire.append(len, 4);
        wire += p;
    }

    FrameBuffer buf;
    std::string payload;
    std::size_t got = 0;
    for (char byte : wire) {
        buf.feed(&byte, 1);
        while (buf.next(payload)) {
            if (got == 0)
                EXPECT_EQ(payload, "abc");
            else
                EXPECT_EQ(payload, "");
            ++got;
        }
    }
    EXPECT_EQ(got, 2u);
    EXPECT_TRUE(buf.error().empty());
    EXPECT_FALSE(buf.next(payload)); // drained
}

TEST(FrameBufferTest, OversizedLengthPoisonsTheStream)
{
    // A length prefix over kFarmMaxFrame cannot be resynced past.
    const std::uint32_t n = kFarmMaxFrame + 1;
    char len[4] = {static_cast<char>(n & 0xff),
                   static_cast<char>((n >> 8) & 0xff),
                   static_cast<char>((n >> 16) & 0xff),
                   static_cast<char>((n >> 24) & 0xff)};
    FrameBuffer buf;
    buf.feed(len, 4);
    std::string payload;
    EXPECT_FALSE(buf.next(payload));
    EXPECT_FALSE(buf.error().empty());
    // Poisoned forever, even if more (valid-looking) bytes arrive.
    buf.feed("AAAA", 4);
    EXPECT_FALSE(buf.next(payload));
    EXPECT_FALSE(buf.error().empty());
}

TEST(FarmCodecTest, ConfigRoundTripsThroughJson)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "urand";
    cfg.prefetcher = PrefetcherKind::Rnr;
    cfg.control = ReplayControlMode::WindowPace;
    cfg.window_size = 96;
    cfg.iterations = 3;
    cfg.cores = 2;
    cfg.ideal_llc = true;

    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(farmConfigJson(cfg), v, &error)) << error;
    ExperimentConfig back;
    ASSERT_TRUE(farmParseConfig(v, back, &error)) << error;
    // key() covers every simulated-behaviour field: equal keys mean the
    // worker runs exactly the cell the client described.
    EXPECT_EQ(back.key(), cfg.key());
    EXPECT_EQ(back.ideal_llc, cfg.ideal_llc);
}

TEST(FarmCodecTest, UnknownPrefetcherNameIsAnErrorNotACrash)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(R"({"app": "pagerank", "input": "urand",
                              "prefetcher": "warp-drive",
                              "control": "none", "window_size": 0,
                              "iterations": 1, "cores": 1,
                              "ideal_llc": false})",
                          v, &error))
        << error;
    ExperimentConfig cfg;
    EXPECT_FALSE(farmParseConfig(v, cfg, &error));
    EXPECT_FALSE(error.empty());
}

TEST(FarmCodecTest, ResultDataRoundTripsExactCounters)
{
    ExperimentResult r;
    r.input_bytes = 12345;
    IterStats it;
    it.cycles = 18446744073709551615ull; // must not transit a double
    it.instructions = 987654321098765ull;
    r.iterations.push_back(it);

    ExperimentResult back;
    ASSERT_TRUE(farmParseResultData(farmResultData(r), back));
    EXPECT_EQ(ResultCache::serialize(back), ResultCache::serialize(r));
    EXPECT_EQ(back.iterations.at(0).cycles, it.cycles);
}

TEST(FarmStatusTest, FormatIsOneHumanReadableLine)
{
    FarmStatus s;
    s.workers = 4;
    s.busy = 2;
    s.queued = 7;
    s.inflight = 2;
    s.done = 10;
    s.simulated = 6;
    s.cached = 4;
    const std::string line = formatFarmStatus(s);
    EXPECT_NE(line.find("2/4 busy"), std::string::npos) << line;
    EXPECT_NE(line.find("queued 7"), std::string::npos) << line;
    EXPECT_NE(line.find("done 10"), std::string::npos) << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;

    s.draining = true;
    s.poisoned = 1;
    const std::string draining = formatFarmStatus(s);
    EXPECT_NE(draining.find("draining"), std::string::npos) << draining;
    EXPECT_NE(draining.find("poisoned"), std::string::npos) << draining;
}

} // namespace
} // namespace rnr
