#include <gtest/gtest.h>

#include "trace/tracer.h"

namespace rnr {
namespace {

TEST(TraceBufferTest, CountsByKind)
{
    TraceBuffer b;
    b.push(TraceRecord::load(0x100, 1, 3));
    b.push(TraceRecord::store(0x200, 2, 0));
    b.push(TraceRecord::control(RnrOp::Start));
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(b.loads(), 1u);
    EXPECT_EQ(b.stores(), 1u);
    EXPECT_EQ(b.controls(), 1u);
    // 3 gap + 1 load + 1 store; controls are not instructions here.
    EXPECT_EQ(b.instructions(), 5u);
}

TEST(TraceBufferTest, ClearResetsEverything)
{
    TraceBuffer b;
    b.push(TraceRecord::load(0x100, 1, 3));
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.instructions(), 0u);
}

TEST(TracerTest, GapAttachesToNextRecord)
{
    TraceBuffer b;
    Tracer t(&b);
    t.instr(5);
    t.instr(2);
    t.load(0x100, 1);
    t.store(0x200, 2);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.records()[0].gap, 7u);
    EXPECT_EQ(b.records()[1].gap, 0u);
}

TEST(TracerTest, ControlCarriesPayloads)
{
    TraceBuffer b;
    Tracer t(&b);
    t.control(RnrOp::AddrBaseSet, 0xABC0, 4096);
    ASSERT_EQ(b.size(), 1u);
    const TraceRecord &r = b.records()[0];
    EXPECT_EQ(r.kind, RecordKind::Control);
    EXPECT_EQ(r.ctrl, RnrOp::AddrBaseSet);
    EXPECT_EQ(r.addr, 0xABC0u);
    EXPECT_EQ(r.aux, 4096u);
}

TEST(TracerTest, RetargetSwitchesBufferAndDropsGap)
{
    TraceBuffer b1, b2;
    Tracer t(&b1);
    t.instr(9);
    t.retarget(&b2);
    t.load(0x100, 1);
    EXPECT_TRUE(b1.empty());
    ASSERT_EQ(b2.size(), 1u);
    EXPECT_EQ(b2.records()[0].gap, 0u); // pending gap was discarded
}

TEST(AddressSpaceTest, RegionsArePageAlignedAndDisjoint)
{
    AddressSpace as;
    const Addr a = as.allocate("a", 100);
    const Addr b = as.allocate("b", kPageSize + 1);
    const Addr c = as.allocate("c", 8);
    EXPECT_EQ(a % kPageSize, 0u);
    EXPECT_EQ(b % kPageSize, 0u);
    EXPECT_GE(b, a + kPageSize);
    EXPECT_GE(c, b + 2 * kPageSize);
}

TEST(AddressSpaceTest, FindByName)
{
    AddressSpace as;
    as.allocate("edges", 128);
    const AddressSpace::Region *r = as.find("edges");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->bytes, 128u);
    EXPECT_EQ(as.find("missing"), nullptr);
}

TEST(AddressSpaceTest, NeverHandsOutAddressZero)
{
    AddressSpace as;
    EXPECT_GT(as.allocate("first", 8), 0u);
}

TEST(RecordTest, ConstructorsSetKinds)
{
    EXPECT_EQ(TraceRecord::load(1, 2, 3).kind, RecordKind::Load);
    EXPECT_EQ(TraceRecord::store(1, 2, 3).kind, RecordKind::Store);
    EXPECT_EQ(TraceRecord::control(RnrOp::Pause).kind,
              RecordKind::Control);
}

} // namespace
} // namespace rnr
