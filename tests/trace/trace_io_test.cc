#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "trace/trace_io.h"

namespace rnr {
namespace {

struct TraceIoFixture : ::testing::Test {
    std::string
    tmpPath(const char *name)
    {
        return testing::TempDir() + "/" + name;
    }
};

TEST_F(TraceIoFixture, RoundTripPreservesEveryField)
{
    TraceBuffer original;
    original.push(TraceRecord::load(0x123456789abc, 42, 7));
    original.push(TraceRecord::store(0xdeadbeef00, 43, 0));
    original.push(TraceRecord::control(RnrOp::AddrBaseSet, 0x1000, 4096));
    original.push(TraceRecord::control(RnrOp::Replay));

    const std::string path = tmpPath("roundtrip.rnrt");
    ASSERT_TRUE(writeTraceFile(path, original));

    TraceBuffer loaded;
    ASSERT_TRUE(readTraceFile(path, loaded));
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.loads(), original.loads());
    EXPECT_EQ(loaded.stores(), original.stores());
    EXPECT_EQ(loaded.controls(), original.controls());
    EXPECT_EQ(loaded.instructions(), original.instructions());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const TraceRecord &a = original.records()[i];
        const TraceRecord &b = loaded.records()[i];
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.aux, b.aux) << i;
        EXPECT_EQ(a.pc, b.pc) << i;
        EXPECT_EQ(a.gap, b.gap) << i;
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.ctrl, b.ctrl) << i;
    }
    std::remove(path.c_str());
}

TEST_F(TraceIoFixture, EmptyTraceRoundTrips)
{
    TraceBuffer empty, loaded;
    const std::string path = tmpPath("empty.rnrt");
    ASSERT_TRUE(writeTraceFile(path, empty));
    ASSERT_TRUE(readTraceFile(path, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST_F(TraceIoFixture, MissingFileFails)
{
    TraceBuffer buf;
    EXPECT_FALSE(readTraceFile(tmpPath("does-not-exist.rnrt"), buf));
}

TEST_F(TraceIoFixture, BadMagicRejected)
{
    const std::string path = tmpPath("bad.rnrt");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOTATRACEFILE_____________";
    }
    TraceBuffer buf;
    EXPECT_FALSE(readTraceFile(path, buf));
    std::remove(path.c_str());
}

TEST_F(TraceIoFixture, TruncatedFileRejected)
{
    TraceBuffer original;
    for (int i = 0; i < 10; ++i)
        original.push(TraceRecord::load(Addr(i) * 64, 1, 1));
    const std::string path = tmpPath("trunc.rnrt");
    ASSERT_TRUE(writeTraceFile(path, original));
    // Chop the file mid-record.
    {
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 13));
    }
    TraceBuffer buf;
    EXPECT_FALSE(readTraceFile(path, buf));
    std::remove(path.c_str());
}

} // namespace
} // namespace rnr
