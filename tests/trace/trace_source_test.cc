/**
 * @file
 * TraceSource block API tests: the batched kernel pulls whole runs via
 * takeBlock(), so its contract — zero-copy views for BufferSource, a
 * staging fallback for arbitrary per-record sources, and free
 * interleaving with take() — is what keeps custom sources working
 * unchanged under the default kernel.
 */
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "trace/trace_source.h"

namespace rnr {
namespace {

TraceBuffer
makeBuffer(std::size_t n)
{
    TraceBuffer b;
    for (std::size_t i = 0; i < n; ++i)
        b.push(TraceRecord::load(0x1000 + Addr(i) * 64,
                                 static_cast<std::uint32_t>(i),
                                 static_cast<std::uint16_t>(i % 4)));
    return b;
}

TEST(BufferSourceBlockTest, TakeBlockReturnsWholeRemainderZeroCopy)
{
    const TraceBuffer buf = makeBuffer(100);
    BufferSource src(&buf);

    std::size_t n = 0;
    const TraceRecord *run = src.takeBlock(n);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(n, 100u);
    // Zero-copy: the run IS the buffer's storage, not a staged copy.
    EXPECT_EQ(run, buf.records().data());
    EXPECT_TRUE(src.done());
    EXPECT_EQ(src.takeBlock(n), nullptr);
    EXPECT_EQ(n, 0u);
}

TEST(BufferSourceBlockTest, TakeAndTakeBlockDrainTheSamePosition)
{
    const TraceBuffer buf = makeBuffer(10);
    BufferSource src(&buf);

    const TraceRecord first = src.take();
    EXPECT_EQ(first.addr, buf.records()[0].addr);

    std::size_t n = 0;
    const TraceRecord *run = src.takeBlock(n);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(n, 9u);
    EXPECT_EQ(run, buf.records().data() + 1);
    EXPECT_TRUE(src.done());
}

TEST(BufferSourceBlockTest, EmptyAndDetachedBuffersYieldNoRun)
{
    std::size_t n = 7;
    BufferSource detached;
    EXPECT_EQ(detached.takeBlock(n), nullptr);
    EXPECT_EQ(n, 0u);

    const TraceBuffer empty;
    BufferSource src(&empty);
    n = 7;
    EXPECT_EQ(src.takeBlock(n), nullptr);
    EXPECT_EQ(n, 0u);
}

/** Per-record-only source: exercises the default takeBlock() fallback
 *  exactly the way a hand-written test source would. */
class CountingSource final : public TraceSource
{
  public:
    explicit CountingSource(std::size_t n) : remaining_(n) {}

    bool done() override { return remaining_ == 0; }

    TraceRecord
    take() override
    {
        --remaining_;
        ++taken_;
        return TraceRecord::load(0x2000 + Addr(taken_) * 64,
                                 static_cast<std::uint32_t>(taken_), 0);
    }

    std::size_t taken() const { return taken_; }

  private:
    std::size_t remaining_;
    std::size_t taken_ = 0;
};

TEST(TraceSourceFallbackTest, StagesUpToMaxBlockRecordsPerCall)
{
    CountingSource src(TraceSource::kMaxBlockRecords + 904);

    std::size_t n = 0;
    const TraceRecord *run = src.takeBlock(n);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(n, TraceSource::kMaxBlockRecords);
    // The staged records are the source's records, in order.
    EXPECT_EQ(run[0].pc, 1u);
    EXPECT_EQ(run[n - 1].pc, TraceSource::kMaxBlockRecords);

    run = src.takeBlock(n);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(n, 904u);
    EXPECT_EQ(run[0].pc, TraceSource::kMaxBlockRecords + 1);

    EXPECT_EQ(src.takeBlock(n), nullptr);
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(src.done());
}

TEST(TraceSourceFallbackTest, ShortStreamsYieldOnePartialBlock)
{
    CountingSource src(5);
    std::size_t n = 0;
    const TraceRecord *run = src.takeBlock(n);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(src.takeBlock(n), nullptr);
}

TEST(TraceSourceFallbackTest, InterleavesWithPerRecordTake)
{
    CountingSource src(10);
    const TraceRecord r = src.take();
    EXPECT_EQ(r.pc, 1u);
    std::size_t n = 0;
    const TraceRecord *run = src.takeBlock(n);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(n, 9u);
    EXPECT_EQ(run[0].pc, 2u);
}

} // namespace
} // namespace rnr
