/**
 * @file
 * Concurrency, determinism and persistence tests for the parallel sweep
 * subsystem (harness/sweep.h + harness/result_cache.h):
 *
 *  - single-flight: N threads asking for one key run one simulation;
 *  - N distinct keys all complete and persist as N well-formed lines;
 *  - corrupt cache lines are skipped, never fatal;
 *  - RNR_JOBS=1 and RNR_JOBS=8 sweeps are bit-identical per cell;
 *  - the JSON export writes the whole batch.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/result_cache.h"
#include "harness/runner.h"
#include "harness/sweep.h"

namespace rnr {
namespace {

/** A cheap cell: one iteration on one core. */
ExperimentConfig
tinyConfig(PrefetcherKind kind = PrefetcherKind::None,
           std::uint32_t window = 0)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 1;
    cfg.cores = 1;
    cfg.prefetcher = kind;
    cfg.window_size = window;
    return cfg;
}

struct SweepFixture : ::testing::Test {
    std::string cache_path_;

    void
    SetUp() override
    {
        // Unique per-test cache file; nothing leaks between tests.
        cache_path_ = ::testing::TempDir() + "sweep_test_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      ".cache";
        std::remove(cache_path_.c_str());
        setenv("RNR_CACHE", "1", 1);
        setenv("RNR_CACHE_FILE", cache_path_.c_str(), 1);
        setenv("RNR_PROGRESS", "0", 1);
        unsetenv("RNR_JSON_OUT");
        unsetenv("RNR_JOBS");
        ResultCache::instance().clearForTest();
    }

    void
    TearDown() override
    {
        std::remove(cache_path_.c_str());
        setenv("RNR_CACHE", "0", 1);
        ResultCache::instance().clearForTest();
    }

    std::vector<std::string>
    cacheFileLines() const
    {
        std::vector<std::string> lines;
        std::ifstream in(cache_path_);
        std::string line;
        while (std::getline(in, line)) {
            if (!line.empty())
                lines.push_back(line);
        }
        return lines;
    }
};

TEST_F(SweepFixture, SameKeyFromManyThreadsSimulatesExactlyOnce)
{
    setenv("RNR_CACHE", "0", 1);
    ResultCache::instance().clearForTest();

    const ExperimentConfig cfg = tinyConfig();
    const std::uint64_t before = experimentsSimulated();

    constexpr unsigned kThreads = 8;
    std::vector<std::string> serialized(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            serialized[t] =
                ResultCache::serialize(runExperiment(cfg));
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(experimentsSimulated(), before + 1);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(serialized[t], serialized[0]) << "thread " << t;
}

TEST_F(SweepFixture, DistinctKeysAllCompleteAndPersistWellFormed)
{
    std::vector<ExperimentConfig> cells;
    for (std::uint32_t w : {16u, 32u, 64u, 128u})
        cells.push_back(tinyConfig(PrefetcherKind::Rnr, w));

    SweepOptions opts;
    opts.jobs = 4;
    opts.progress = 0;
    SweepRunner runner(opts);
    runner.add(cells);
    const std::vector<ExperimentResult> results = runner.run();

    ASSERT_EQ(results.size(), cells.size());
    EXPECT_EQ(runner.stats().simulated, cells.size());
    EXPECT_EQ(runner.stats().cache_hits, 0u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].config.key(), cells[i].key());
        EXPECT_FALSE(results[i].iterations.empty());
    }

    const std::vector<std::string> lines = cacheFileLines();
    ASSERT_EQ(lines.size(), cells.size());
    for (const std::string &line : lines) {
        const auto bar = line.find('|');
        ASSERT_NE(bar, std::string::npos) << line;
        ExperimentResult parsed;
        EXPECT_TRUE(ResultCache::deserialize(line.substr(bar + 1),
                                             parsed))
            << line;
    }

    // A second sweep over the same cells is pure cache hits.
    SweepRunner warm(opts);
    warm.add(cells);
    warm.run();
    EXPECT_EQ(warm.stats().simulated, 0u);
    EXPECT_EQ(warm.stats().cache_hits, cells.size());
}

TEST_F(SweepFixture, CorruptCacheLinesAreSkippedNotFatal)
{
    const ExperimentConfig cfg = tinyConfig();
    const ExperimentResult first = runExperiment(cfg);

    // Vandalise the file: junk, a barless line and a truncated payload.
    {
        std::ofstream out(cache_path_, std::ios::app);
        out << "not a cache line at all\n";
        out << cfg.key() << "X garbage with no separator\n";
        out << "some:other:key|1 2 3\n"; // truncated payload
    }
    ResultCache::instance().clearForTest();

    const std::uint64_t before = experimentsSimulated();
    const ExperimentResult again = runExperiment(cfg);
    EXPECT_EQ(experimentsSimulated(), before)
        << "the surviving good line should have been used";
    EXPECT_EQ(ResultCache::serialize(again),
              ResultCache::serialize(first));
    EXPECT_GE(ResultCache::instance().corruptLinesSkipped(), 3u);
}

TEST_F(SweepFixture, JobCountDoesNotChangeResults)
{
    setenv("RNR_CACHE", "0", 1);

    std::vector<ExperimentConfig> cells;
    for (PrefetcherKind k :
         {PrefetcherKind::None, PrefetcherKind::Stride,
          PrefetcherKind::Rnr}) {
        ExperimentConfig cfg = tinyConfig(k);
        cfg.iterations = 2;
        cfg.cores = 2;
        cells.push_back(cfg);
    }

    auto sweepWith = [&](unsigned jobs) {
        ResultCache::instance().clearForTest();
        SweepOptions opts;
        opts.jobs = jobs;
        opts.progress = 0;
        std::vector<std::string> out;
        for (const ExperimentResult &r : runSweep(cells, opts))
            out.push_back(ResultCache::serialize(r));
        return out;
    };

    const std::vector<std::string> serial = sweepWith(1);
    const std::vector<std::string> parallel = sweepWith(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i])
            << "cell " << cells[i].key()
            << " diverged between RNR_JOBS=1 and RNR_JOBS=8";
}

TEST_F(SweepFixture, DuplicateConfigsFoldIntoOneCell)
{
    SweepOptions opts;
    opts.progress = 0;
    SweepRunner runner(opts);
    runner.add(tinyConfig());
    runner.add(tinyConfig());
    runner.add(tinyConfig());
    const auto results = runner.run();
    EXPECT_EQ(results.size(), 1u);
    EXPECT_EQ(runner.stats().duplicates, 2u);
    EXPECT_EQ(runner.stats().cells, 1u);
}

TEST_F(SweepFixture, JsonExportWritesTheWholeBatch)
{
    const std::string json_path =
        ::testing::TempDir() + "sweep_test_export.json";
    std::remove(json_path.c_str());

    SweepOptions opts;
    opts.progress = 0;
    opts.json_out = json_path;
    opts.label = "unit";
    const std::vector<ExperimentConfig> cells = {
        tinyConfig(PrefetcherKind::None),
        tinyConfig(PrefetcherKind::Stride)};
    runSweep(cells, opts);

    std::ifstream in(json_path);
    ASSERT_TRUE(in.good()) << json_path;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string body = buf.str();
    EXPECT_NE(body.find("\"schema\": \"rnr-sweep-v2\""),
              std::string::npos);
    EXPECT_NE(body.find("\"label\": \"unit\""), std::string::npos);
    EXPECT_NE(body.find("\"host\""), std::string::npos);
    EXPECT_NE(body.find("\"wall_sec\""), std::string::npos);
    for (const ExperimentConfig &cfg : cells)
        EXPECT_NE(body.find(cfg.key()), std::string::npos)
            << cfg.key();
    EXPECT_NE(body.find("\"cycles\""), std::string::npos);
    std::remove(json_path.c_str());
}

TEST_F(SweepFixture, JsonExportRoundTripsThroughTheLoader)
{
    const std::string json_path =
        ::testing::TempDir() + "sweep_test_roundtrip.json";
    std::remove(json_path.c_str());

    SweepOptions opts;
    opts.progress = 0;
    opts.json_out = json_path;
    opts.label = "roundtrip";
    const std::vector<ExperimentConfig> cells = {
        tinyConfig(PrefetcherKind::None),
        tinyConfig(PrefetcherKind::Rnr, 64)};
    const std::vector<ExperimentResult> written = runSweep(cells, opts);

    std::vector<ExperimentResult> loaded;
    std::string label, error;
    SweepHostInfo host;
    ASSERT_TRUE(readResultsJson(json_path, loaded, &label, &host, &error))
        << error;
    EXPECT_EQ(label, "roundtrip");
    EXPECT_GT(host.wall_sec, 0.0);
    ASSERT_EQ(loaded.size(), written.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].config.key(), written[i].config.key());
        // The full iteration payload survives: serialization through
        // the cache codec is the strongest equality we have.
        EXPECT_EQ(ResultCache::serialize(loaded[i]),
                  ResultCache::serialize(written[i]))
            << loaded[i].config.key();
    }
    std::remove(json_path.c_str());
}

TEST(SweepJsonLoaderTest, AcceptsLegacyV1Documents)
{
    // Hand-written rnr-sweep-v1 document: no "host" object, old schema
    // string.  The loader must stay backward compatible.
    const std::string json_path =
        ::testing::TempDir() + "sweep_test_legacy_v1.json";
    {
        std::ofstream out(json_path);
        out << R"({
  "schema": "rnr-sweep-v1",
  "label": "legacy",
  "cells": [
    {
      "key": "pagerank:amazon:i1:c1:pf=none:w0:ctl=none",
      "config": {
        "app": "pagerank", "input": "amazon",
        "iterations": 1, "cores": 1,
        "prefetcher": "none", "window_size": 0, "control": "none"
      },
      "input_bytes": 4096,
      "seq_table_bytes": 0,
      "div_table_bytes": 0,
      "iterations": [
        {"cycles": 1234, "instructions": 1000}
      ]
    }
  ]
})";
    }

    std::vector<ExperimentResult> loaded;
    std::string label, error;
    SweepHostInfo host;
    ASSERT_TRUE(readResultsJson(json_path, loaded, &label, &host, &error))
        << error;
    EXPECT_EQ(label, "legacy");
    EXPECT_DOUBLE_EQ(host.wall_sec, 0.0); // v1 carries no host info
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].config.app, "pagerank");
    EXPECT_EQ(loaded[0].config.prefetcher, PrefetcherKind::None);
    EXPECT_EQ(loaded[0].input_bytes, 4096u);
    ASSERT_EQ(loaded[0].iterations.size(), 1u);
    EXPECT_EQ(loaded[0].iterations[0].cycles, 1234u);
    EXPECT_EQ(loaded[0].iterations[0].instructions, 1000u);
    std::remove(json_path.c_str());
}

TEST(SweepJsonLoaderTest, RejectsUnknownSchema)
{
    const std::string json_path =
        ::testing::TempDir() + "sweep_test_bad_schema.json";
    {
        std::ofstream out(json_path);
        out << R"({"schema": "rnr-sweep-v99", "cells": []})";
    }
    std::vector<ExperimentResult> loaded;
    std::string error;
    EXPECT_FALSE(readResultsJson(json_path, loaded, nullptr, nullptr,
                                 &error));
    EXPECT_FALSE(error.empty());
    std::remove(json_path.c_str());
}

TEST(SweepHostInfoTest, PeakRssIsReportedOnLinux)
{
#ifdef __linux__
    // A live gtest process has certainly touched more than a MiB.
    EXPECT_GT(hostPeakRssBytes(), std::uint64_t{1} << 20);
#else
    EXPECT_EQ(hostPeakRssBytes(), 0u); // documented "unknown" fallback
#endif
}

TEST(SweepEtaTest, ExtrapolatesFromFinishedCells)
{
    // 2 of 6 cells in 10s -> 4 remaining at 5s each.
    EXPECT_EQ(formatSweepEta(2, 6, 2, 10.0), "20s");
    EXPECT_EQ(formatSweepEta(3, 3, 3, 9.0), "0s");
}

TEST(SweepEtaTest, NoSignalMeansNoEta)
{
    // Nothing finished yet.
    EXPECT_EQ(formatSweepEta(0, 6, 0, 0.0), "--");
    // Clock has not advanced (sub-resolution cache hits).
    EXPECT_EQ(formatSweepEta(2, 6, 2, 0.0), "--");
    // Every finished cell was a warm cache hit: per-cell time says
    // nothing about the simulations still to run, so no nonsense
    // near-zero ETA.
    EXPECT_EQ(formatSweepEta(4, 8, 0, 0.001), "--");
}

TEST(SweepEtaTest, OverdoneCountClampsToZeroRemaining)
{
    // done > total (e.g. duplicate-folding races) must not underflow.
    EXPECT_EQ(formatSweepEta(7, 6, 7, 14.0), "0s");
}

} // namespace
} // namespace rnr
