/**
 * @file
 * End-to-end trace-store harness tests: streaming replay must be
 * bit-identical to the materialised path, a sweep must capture each
 * workload exactly once (and zero times when warm), and a trace file on
 * disk must run as a workload ("tracefile" app).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "harness/runner.h"
#include "tracestore/trace_codec.h"
#include "tracestore/trace_store.h"
#include "workloads/trace_replay.h"

namespace rnr {
namespace {

namespace fs = std::filesystem;

/** Field-by-field equality over the whole X-macro'd IterStats. */
void
expectSameStats(const IterStats &a, const IterStats &b, const char *what)
{
#define RNR_CHECK_FIELD(type, name)                                         \
    EXPECT_EQ(a.name, b.name) << what << ": field " #name;
    RNR_ITER_STAT_FIELDS(RNR_CHECK_FIELD)
#undef RNR_CHECK_FIELD
}

void
expectSameResult(const ExperimentResult &a, const ExperimentResult &b,
                 const char *what)
{
    ASSERT_EQ(a.iterations.size(), b.iterations.size()) << what;
    for (std::size_t i = 0; i < a.iterations.size(); ++i)
        expectSameStats(a.iterations[i], b.iterations[i], what);
    EXPECT_EQ(a.input_bytes, b.input_bytes) << what;
    EXPECT_EQ(a.target_bytes, b.target_bytes) << what;
    EXPECT_EQ(a.seq_table_bytes, b.seq_table_bytes) << what;
    EXPECT_EQ(a.div_table_bytes, b.div_table_bytes) << what;
}

class TraceReplayHarnessTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setenv("RNR_CACHE", "0", 1);
        setenv("RNR_PROGRESS", "0", 1);
        root_ = (fs::temp_directory_path() /
                 ("rnr_replay_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name())))
                    .string();
        fs::remove_all(root_);
        setenv("RNR_TRACE_DIR", root_.c_str(), 1);
        unsetenv("RNR_TRACE_STORE");
        unsetenv("RNR_TRACE_CAP_MB");
        TraceStore::instance().resetForTest();
    }

    void
    TearDown() override
    {
        TraceStore::instance().resetForTest();
        unsetenv("RNR_TRACE_DIR");
        unsetenv("RNR_TRACE_STORE");
        fs::remove_all(root_);
    }

    /** Runs @p cfg three ways — store off, store cold, store warm —
     *  and requires all three results to be bit-identical. */
    void
    checkEquivalence(const ExperimentConfig &cfg)
    {
        TraceStore &store = TraceStore::instance();

        setenv("RNR_TRACE_STORE", "0", 1);
        const ExperimentResult off = runExperimentUncached(cfg);
        unsetenv("RNR_TRACE_STORE");

        const ExperimentResult cold = runExperimentUncached(cfg);
        EXPECT_EQ(store.captures(), 1u);
        EXPECT_EQ(store.hits(), 0u);

        const ExperimentResult warm = runExperimentUncached(cfg);
        EXPECT_EQ(store.captures(), 1u);
        EXPECT_EQ(store.hits(), 1u);

        expectSameResult(cold, off, "cold-capture vs store-off");
        expectSameResult(warm, off, "warm-replay vs store-off");
    }

    std::string root_;
};

TEST_F(TraceReplayHarnessTest, StreamingReplayMatchesMaterializedPageRank)
{
    // Droplet reads PageRank's per-iteration p_curr base via its hint,
    // so this covers Workload::beginReplayIteration() on the replay
    // path (a stale base would shift every prefetch address).
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 3;
    cfg.prefetcher = PrefetcherKind::Droplet;
    checkEquivalence(cfg);
}

TEST_F(TraceReplayHarnessTest, StreamingReplayMatchesMaterializedSpcg)
{
    // RnR consumes the trace's control records (record pass, then
    // replay passes), so this covers control round-tripping end to end.
    ExperimentConfig cfg;
    cfg.app = "spcg";
    cfg.input = "pdb1HYS";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    checkEquivalence(cfg);
}

TEST_F(TraceReplayHarnessTest, SweepCapturesEachWorkloadOnceThenNever)
{
    TraceStore &store = TraceStore::instance();

    // Three prefetcher configs over ONE workload: the store key excludes
    // the prefetcher, so a cold sweep captures exactly once and serves
    // the other cells from disk.
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    for (PrefetcherKind k : {PrefetcherKind::None, PrefetcherKind::Stride,
                             PrefetcherKind::Rnr}) {
        cfg.prefetcher = k;
        runExperimentUncached(cfg);
    }
    EXPECT_EQ(store.captures(), 1u);
    EXPECT_EQ(store.hits(), 2u);

    // Warm process (same corpus, fresh counters): zero captures.
    TraceStore::instance().resetForTest();
    for (PrefetcherKind k : {PrefetcherKind::None, PrefetcherKind::Stride,
                             PrefetcherKind::Rnr}) {
        cfg.prefetcher = k;
        runExperimentUncached(cfg);
    }
    EXPECT_EQ(store.captures(), 0u);
    EXPECT_EQ(store.hits(), 3u);

    // A different workload is a different entry.
    cfg.input = "urand";
    cfg.prefetcher = PrefetcherKind::None;
    runExperimentUncached(cfg);
    EXPECT_EQ(store.captures(), 1u);
}

TEST_F(TraceReplayHarnessTest, CorruptEntryIsRecapturedTransparently)
{
    TraceStore &store = TraceStore::instance();
    ExperimentConfig cfg;
    cfg.app = "jacobi";
    cfg.input = "bbmat";
    cfg.iterations = 2;

    const ExperimentResult first = runExperimentUncached(cfg);
    EXPECT_EQ(store.captures(), 1u);

    // Truncate one stored trace; the next run must quarantine the
    // entry, recapture, and still produce the identical result.
    TraceStore::Entry entry;
    ASSERT_EQ(store.acquire(cfg.workloadKey(), entry),
              TraceStore::Acquire::Hit);
    const std::string victim = entry.tracePath(0, 0);
    fs::resize_file(victim, fs::file_size(victim) / 3);

    const ExperimentResult again = runExperimentUncached(cfg);
    EXPECT_GE(store.corruptEntries(), 1u);
    EXPECT_EQ(store.captures(), 2u);
    expectSameResult(again, first, "recaptured vs original");
}

TEST_F(TraceReplayHarnessTest, TraceFileRunsAsAWorkload)
{
    // Synthesise a strided trace (what `trace_tools convert` produces
    // from a ChampSim capture: loads/stores only, no control records),
    // then run it through the full harness as app "tracefile".
    TraceBuffer buf;
    for (unsigned i = 0; i < 4096; ++i)
        buf.push(TraceRecord::load(0x100000 + 64 * (i % 1024),
                                   7 + (i % 3), 2));
    const std::string path =
        (fs::path(root_) / "imported.rnrt").string();
    fs::create_directories(root_);
    ASSERT_TRUE(bool(writeTraceFileV2(path, buf)));

    EXPECT_EQ(TraceFileWorkload::detectCores(path), 1u);

    ExperimentConfig cfg;
    cfg.app = "tracefile";
    cfg.input = path;
    cfg.cores = 1;
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    const ExperimentResult r = runExperimentUncached(cfg);

    ASSERT_EQ(r.iterations.size(), 2u);
    for (const IterStats &it : r.iterations) {
        EXPECT_GT(it.cycles, 0u);
        EXPECT_GT(it.instructions, 0u);
        EXPECT_GT(it.l2_accesses, 0u);
    }
    // Iteration 0 records, iteration 1 replays: RnR must have issued
    // prefetches against the file's own address stream.
    EXPECT_GT(r.first().rnr_recorded, 0u);
    EXPECT_GT(r.steady().pf_issued, 0u);

    // The tracefile app bypasses the store (it IS a trace already).
    EXPECT_EQ(TraceStore::instance().captures(), 0u);
}

TEST_F(TraceReplayHarnessTest, WorkloadKeyExcludesSimulationDimensions)
{
    ExperimentConfig a;
    a.app = "pagerank";
    a.input = "amazon";
    ExperimentConfig b = a;

    b.prefetcher = PrefetcherKind::Rnr;
    b.ideal_llc = true;
    EXPECT_EQ(a.workloadKey(), b.workloadKey());
    EXPECT_NE(a.key(), b.key());

    // Dimensions that change the emitted trace must change the key.
    b = a;
    b.window_size = 128;
    EXPECT_NE(a.workloadKey(), b.workloadKey());
    b = a;
    b.iterations += 1;
    EXPECT_NE(a.workloadKey(), b.workloadKey());
    b = a;
    b.cores += 1;
    EXPECT_NE(a.workloadKey(), b.workloadKey());
    b = a;
    b.input = "u14";
    EXPECT_NE(a.workloadKey(), b.workloadKey());
}

} // namespace
} // namespace rnr
