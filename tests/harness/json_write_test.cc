/**
 * @file
 * Tests for the shared JSON writing helpers (harness/json_write.h) —
 * the single escaper used by the sweep export, the run report, trace
 * events and the farm wire protocol.  The escaping rules here are what
 * keeps those four emitters in agreement; a regression in any case
 * below would corrupt one of their outputs.
 */
#include <cmath>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "harness/json_parse.h"
#include "harness/json_write.h"

namespace rnr {
namespace {

TEST(JsonWriteTest, PlainTextPassesThroughUntouched)
{
    EXPECT_EQ(jsonEscape("pagerank:amazon:i1:c1"),
              "pagerank:amazon:i1:c1");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonWriteTest, QuotesAndBackslashesAreEscaped)
{
    EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(jsonEscape("C:\\traces\\run"), "C:\\\\traces\\\\run");
}

TEST(JsonWriteTest, NamedControlCharactersUseShortEscapes)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
}

TEST(JsonWriteTest, OtherControlCharactersUseUnicodeEscapes)
{
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\\u001f");
    // 0x20 (space) and above are not control characters.
    EXPECT_EQ(jsonEscape(" ~"), " ~");
}

TEST(JsonWriteTest, QuoteWrapsTheEscapedText)
{
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote(""), "\"\"");
}

TEST(JsonWriteTest, U64RendersExactlyIncludingMax)
{
    EXPECT_EQ(jsonU64(0), "0");
    EXPECT_EQ(jsonU64(1234567890123456789ull), "1234567890123456789");
    // 2^64-1 cannot survive a trip through a double; the writer must
    // not take one.
    EXPECT_EQ(jsonU64(18446744073709551615ull), "18446744073709551615");
}

TEST(JsonWriteTest, U64RoundTripsThroughTheParser)
{
    const std::uint64_t big = 18446744073709551615ull;
    const std::string doc = "{\"v\": " + jsonU64(big) + "}";
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(doc, v, &error)) << error;
    const JsonValue *field = v.find("v");
    ASSERT_NE(field, nullptr);
    EXPECT_EQ(field->asU64(), big);
}

TEST(JsonWriteTest, DoubleRoundTripsAndNonFiniteBecomesZero)
{
    const double pi = 3.141592653589793;
    EXPECT_EQ(std::strtod(jsonDouble(pi).c_str(), nullptr), pi);
    EXPECT_EQ(jsonDouble(0.0), "0");
    // JSON has no NaN/Infinity tokens; the writer substitutes 0 rather
    // than emitting an unparsable document.
    EXPECT_EQ(jsonDouble(std::nan("")), "0");
    EXPECT_EQ(jsonDouble(HUGE_VAL), "0");
}

TEST(JsonWriteTest, BoolUsesJsonKeywords)
{
    EXPECT_STREQ(jsonBool(true), "true");
    EXPECT_STREQ(jsonBool(false), "false");
}

} // namespace
} // namespace rnr
