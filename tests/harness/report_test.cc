/**
 * @file
 * Telemetry-instrumented runs and the report generator:
 *
 *  - a sampled run produces bit-identical IterStats to an unsampled run
 *    (the tentpole "observation only" guarantee);
 *  - the harvested blob carries the RnR replay-lane series (n_pace,
 *    metadata-buffer fill) plus the memory-system occupancy series;
 *  - buildSweepReport + reportJson emit a valid rnr-report-v2 document
 *    (telemetry plus the embedded rnr-attrib-v1 attribution object);
 *  - reportHtml is one self-contained page (inline SVG, no fetches);
 *  - the json_parse DOM reader handles the formats we feed it.
 */
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/json_parse.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "sim/timeseries.h"

namespace rnr {
namespace {

ExperimentConfig
rnrConfig()
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.cores = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    return cfg;
}

struct ReportFixture : ::testing::Test {
    static void
    SetUpTestSuite()
    {
        // Reports and instrumented runs must not be polluted by (or
        // pollute) any ambient caches.
        setenv("RNR_CACHE", "0", 1);
        setenv("RNR_TRACE_STORE", "0", 1);
        setenv("RNR_PROGRESS", "0", 1);
        unsetenv("RNR_SAMPLE_CYCLES");
        unsetenv("RNR_TRACE");
    }
};

TEST_F(ReportFixture, SampledRunIsBitIdenticalToUnsampled)
{
    const ExperimentConfig cfg = rnrConfig();

    const ExperimentResult plain =
        runExperimentInstrumented(cfg, nullptr, nullptr);

    TelemetrySampler tm(256); // aggressive period: ~32x denser than the
                              // default, to maximise observable skew
    const ExperimentResult sampled =
        runExperimentInstrumented(cfg, nullptr, &tm);

    ASSERT_EQ(sampled.iterations.size(), plain.iterations.size());
    for (std::size_t i = 0; i < plain.iterations.size(); ++i) {
        const IterStats &a = plain.iterations[i];
        const IterStats &b = sampled.iterations[i];
#define RNR_CHECK_FIELD(type, name)                                          \
        EXPECT_EQ(a.name, b.name) << "field " #name " iteration " << i;
        RNR_ITER_STAT_FIELDS(RNR_CHECK_FIELD)
#undef RNR_CHECK_FIELD
    }
    EXPECT_EQ(sampled.seq_table_bytes, plain.seq_table_bytes);
    EXPECT_EQ(sampled.div_table_bytes, plain.div_table_bytes);

    // The unsampled run carries no blob; the sampled one does.
    EXPECT_EQ(plain.telemetry, nullptr);
    ASSERT_NE(sampled.telemetry, nullptr);
    EXPECT_GT(sampled.telemetry->samples_taken, 0u);
}

TEST_F(ReportFixture, BlobCarriesTheReplayLaneAndMemorySeries)
{
    ExperimentConfig cfg = rnrConfig();
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_cycles = 512;

    TelemetrySampler tm(512);
    const ExperimentResult r =
        runExperimentInstrumented(cfg, nullptr, &tm);
    ASSERT_NE(r.telemetry, nullptr);
    const TelemetryBlob &blob = *r.telemetry;

    // The RnR replay lane, per core.
    EXPECT_NE(blob.findSeries("rnr.core0.n_pace"), nullptr);
    EXPECT_NE(blob.findSeries("rnr.core0.seq_buffer_bytes"), nullptr);
    EXPECT_NE(blob.findSeries("rnr.core0.div_buffer_bytes"), nullptr);
    EXPECT_NE(blob.findSeries("rnr.core1.n_pace"), nullptr);

    // The memory system and per-core IPC.
    std::size_t mshr = 0, ipc = 0;
    for (const TelemetrySeriesBlob &s : blob.series) {
        if (s.name.find("mshr") != std::string::npos)
            ++mshr;
        if (s.name.find("ipc") != std::string::npos)
            ++ipc;
        // Points are in non-decreasing tick order.
        for (std::size_t i = 1; i < s.points.size(); ++i)
            EXPECT_GE(s.points[i].tick, s.points[i - 1].tick) << s.name;
    }
    EXPECT_GT(mshr, 0u);
    EXPECT_GT(ipc, 0u);

    // The acceptance bar: at least six distinct series.
    EXPECT_GE(blob.series.size(), 6u);

    // And the latency distributions were recorded.
    EXPECT_FALSE(blob.histograms.empty());
}

TEST_F(ReportFixture, ReportJsonIsValidAndCompleteRnrReportV2)
{
    ExperimentConfig none = rnrConfig();
    none.prefetcher = PrefetcherKind::None;
    const SweepReport rep =
        buildSweepReport({none, rnrConfig()}, "unit", 1024);
    ASSERT_EQ(rep.cells.size(), 2u);
    EXPECT_EQ(rep.sample_cycles, 1024u);

    const std::string json = reportJson(rep);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, &error)) << error;

    const JsonValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, "rnr-report-v2");
    EXPECT_EQ(doc.find("label")->text, "unit");

    const JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_TRUE(cells->isArray());
    ASSERT_EQ(cells->items.size(), 2u);

    for (const JsonValue &cell : cells->items) {
        EXPECT_NE(cell.find("key"), nullptr);
        EXPECT_NE(cell.find("config"), nullptr);
        EXPECT_NE(cell.find("host"), nullptr);
        EXPECT_NE(cell.find("metrics"), nullptr);
        const JsonValue *tel = cell.find("telemetry");
        ASSERT_NE(tel, nullptr);
        const JsonValue *series = tel->find("series");
        ASSERT_NE(series, nullptr);
        EXPECT_GE(series->items.size(), 6u);

        // v2: every cell embeds its attribution object.
        const JsonValue *attrib = cell.find("attrib");
        ASSERT_NE(attrib, nullptr);
        const JsonValue *aschema = attrib->find("schema");
        ASSERT_NE(aschema, nullptr);
        EXPECT_EQ(aschema->text, "rnr-attrib-v1");
        EXPECT_NE(attrib->find("totals"), nullptr);
        EXPECT_NE(attrib->find("sites"), nullptr);
        EXPECT_NE(attrib->find("regions"), nullptr);
        EXPECT_NE(attrib->find("pollution_filter"), nullptr);
    }

    // The RnR cell's replay lane made it into the document, and the
    // prefetcher cell has baseline-relative metrics (cell order follows
    // the config order, so cell 1 is the RnR one).
    const JsonValue &rnr_cell = cells->items[1];
    bool has_pace = false, has_fill = false;
    for (const JsonValue &s :
         rnr_cell.find("telemetry")->find("series")->items) {
        const JsonValue *name = s.find("name");
        ASSERT_NE(name, nullptr);
        if (name->text.find("n_pace") != std::string::npos)
            has_pace = true;
        if (name->text.find("buffer_bytes") != std::string::npos)
            has_fill = true;
    }
    EXPECT_TRUE(has_pace);
    EXPECT_TRUE(has_fill);
    const JsonValue *metrics = rnr_cell.find("metrics");
    EXPECT_NE(metrics->find("speedup"), nullptr);
    EXPECT_NE(metrics->find("coverage"), nullptr);
    EXPECT_GT(metrics->find("speedup")->asDouble(), 0.0);

    // The RnR cell's attribution saw real prefetches, and its replay
    // lane populated the rnr class splits.
    const JsonValue *attrib = rnr_cell.find("attrib");
    ASSERT_NE(attrib, nullptr);
    EXPECT_GT(attrib->find("totals")->find("issued")->asU64(), 0u);
    const JsonValue *rnr = attrib->find("rnr");
    ASSERT_NE(rnr, nullptr);
    const std::uint64_t classified = rnr->find("ontime")->asU64() +
                                     rnr->find("early")->asU64() +
                                     rnr->find("late")->asU64() +
                                     rnr->find("out_of_window")->asU64();
    EXPECT_GT(classified, 0u);
}

TEST_F(ReportFixture, HtmlIsSelfContained)
{
    const SweepReport rep = buildSweepReport({rnrConfig()}, "html", 2048);
    const std::string html = reportHtml(rep);

    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);     // sparklines
    EXPECT_NE(html.find("n_pace"), std::string::npos);   // replay lane
    // v2 dashboards: the attribution section with its per-site table,
    // the region heatmap, and the per-region table.
    EXPECT_NE(html.find("Prefetch attribution"), std::string::npos);
    EXPECT_NE(html.find("class=\"attrib-sites\""), std::string::npos);
    EXPECT_NE(html.find("class=\"heatmap\""), std::string::npos);
    EXPECT_NE(html.find("class=\"attrib-regions\""), std::string::npos);
    // Self-contained: no external fetches of any kind.
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("<script src"), std::string::npos);
    EXPECT_EQ(html.find("<link"), std::string::npos);
}

TEST_F(ReportFixture, WriteReportEmitsBothFilesAtomically)
{
    const std::string prefix = ::testing::TempDir() + "report_test_out";
    std::remove((prefix + ".json").c_str());
    std::remove((prefix + ".html").c_str());

    const SweepReport rep = buildSweepReport({rnrConfig()}, "files");
    ASSERT_TRUE(writeReport(prefix, rep));

    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJsonFile(prefix + ".json", doc, &error)) << error;

    std::ifstream html(prefix + ".html");
    ASSERT_TRUE(html.good());
    std::stringstream buf;
    buf << html.rdbuf();
    EXPECT_NE(buf.str().find("<svg"), std::string::npos);

    std::remove((prefix + ".json").c_str());
    std::remove((prefix + ".html").c_str());
}

TEST(ReportEnvTest, OutPrefixComesFromEnvironment)
{
    unsetenv("RNR_REPORT_OUT");
    EXPECT_EQ(reportEnvOutPrefix(), "");
    setenv("RNR_REPORT_OUT", "/tmp/my_report", 1);
    EXPECT_EQ(reportEnvOutPrefix(), "/tmp/my_report");
    unsetenv("RNR_REPORT_OUT");
}

// ---- json_parse: the DOM reader under the loaders and the gate ----

TEST(JsonParseTest, ParsesScalarsArraysAndObjects)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(
        R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}})", v,
        &error))
        << error;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->asU64(), 1u);
    const JsonValue *b = v.find("b");
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->items.size(), 3u);
    EXPECT_TRUE(b->items[0].boolean);
    EXPECT_TRUE(b->items[1].isNull());
    EXPECT_EQ(b->items[2].text, "x\n");
    EXPECT_DOUBLE_EQ(v.find("c")->find("d")->asDouble(), -2.5);
}

TEST(JsonParseTest, U64CountersRoundTripExactly)
{
    // 2^63 + 1 is not representable as a double; the raw-token design
    // must preserve it exactly.
    JsonValue v;
    ASSERT_TRUE(parseJson(R"({"n": 9223372036854775809})", v));
    EXPECT_EQ(v.find("n")->asU64(), 9223372036854775809ull);
}

TEST(JsonParseTest, ScientificNotationAndNegatives)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"({"sci": 5.0e6, "neg": -7})", v));
    EXPECT_DOUBLE_EQ(v.find("sci")->asDouble(), 5.0e6);
    EXPECT_EQ(v.find("sci")->asU64(), 5000000u);
    EXPECT_EQ(v.find("neg")->asU64(), 0u); // negatives truncate to 0
    EXPECT_DOUBLE_EQ(v.find("neg")->asDouble(), -7.0);
}

TEST(JsonParseTest, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("{", v, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{\"a\": 1,}", v, &error));
    EXPECT_FALSE(parseJson("[1, 2] trailing", v, &error));
    EXPECT_FALSE(parseJson("", v, &error));
    EXPECT_FALSE(parseJson("{\"unterminated", v, &error));
}

TEST(JsonParseTest, DepthLimitStopsRecursionBombs)
{
    std::string bomb(200, '[');
    bomb += std::string(200, ']');
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(bomb, v, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonParseTest, UnicodeEscapesDecodeToUtf8)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("{\"s\": \"\\u00e9A\"}", v));
    EXPECT_EQ(v.find("s")->text, "\xc3\xa9" "A");
}

} // namespace
} // namespace rnr
