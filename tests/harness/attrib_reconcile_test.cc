/**
 * @file
 * End-to-end attribution guarantees through runExperimentUncached():
 *
 *  1. **Exact reconciliation** — AttribBlob::totals and the rnr_*
 *     class counts equal the IterStats counters summed over iterations
 *     for every prefetcher family (the tables may fold, the totals may
 *     not drift).
 *  2. **Observation only** — enabling attribution leaves every
 *     IterStats field bit-identical, under both the batched kernel and
 *     RNR_KERNEL=legacy.
 *
 * The file cache and trace store are disabled so every run is a real
 * simulation (a cache hit would carry no attrib blob by design).
 */
#include <cstdlib>
#include <cstdint>

#include <gtest/gtest.h>

#include "harness/runner.h"
#include "sim/attrib.h"

namespace rnr {
namespace {

struct AttribReconcileFixture : ::testing::Test {
    void
    SetUp() override
    {
        setenv("RNR_CACHE", "0", 1);
        setenv("RNR_TRACE_STORE", "0", 1);
        unsetenv("RNR_KERNEL");
        unsetenv("RNR_ATTRIB");
    }

    void
    TearDown() override
    {
        unsetenv("RNR_KERNEL");
        unsetenv("RNR_ATTRIB");
    }

    /** IterStats counter summed over every simulated iteration. */
    static std::uint64_t
    sum(const ExperimentResult &r, std::uint64_t IterStats::*field)
    {
        std::uint64_t s = 0;
        for (const IterStats &it : r.iterations)
            s += it.*field;
        return s;
    }

    static void
    expectExactReconciliation(ExperimentConfig cfg)
    {
        cfg.attrib.enabled = true;
        const ExperimentResult r = runExperimentUncached(cfg);
        ASSERT_NE(r.attrib, nullptr) << cfg.key();
        const AttribBlob &b = *r.attrib;

        EXPECT_EQ(b.totals.issued, sum(r, &IterStats::pf_issued))
            << cfg.key();
        EXPECT_EQ(b.totals.useful, sum(r, &IterStats::pf_useful))
            << cfg.key();
        EXPECT_EQ(b.totals.late_merged,
                  sum(r, &IterStats::pf_late_merged))
            << cfg.key();
        EXPECT_EQ(b.rnr_ontime, sum(r, &IterStats::rnr_ontime))
            << cfg.key();
        EXPECT_EQ(b.rnr_early, sum(r, &IterStats::rnr_early))
            << cfg.key();
        EXPECT_EQ(b.rnr_late, sum(r, &IterStats::rnr_late)) << cfg.key();
        EXPECT_EQ(b.rnr_out_of_window,
                  sum(r, &IterStats::rnr_out_of_window))
            << cfg.key();

        // The per-window Fig 11 splits partition the class totals.
        AttribBlob::WindowRow w = b.window_overflow;
        for (const auto &row : b.windows) {
            w.ontime += row.ontime;
            w.early += row.early;
            w.late += row.late;
            w.out_of_window += row.out_of_window;
        }
        EXPECT_EQ(w.ontime, b.rnr_ontime) << cfg.key();
        EXPECT_EQ(w.early, b.rnr_early) << cfg.key();
        EXPECT_EQ(w.late, b.rnr_late) << cfg.key();
        EXPECT_EQ(w.out_of_window, b.rnr_out_of_window) << cfg.key();

        // The capped tables plus their fold buckets re-sum to the
        // totals on every outcome axis.
        for (auto field : {&AttribSiteStats::issued,
                           &AttribSiteStats::useful,
                           &AttribSiteStats::late_merged,
                           &AttribSiteStats::evicted_unused,
                           &AttribSiteStats::pollution}) {
            std::uint64_t sites = b.site_other.*field;
            for (const auto &row : b.sites)
                sites += row.stats.*field;
            EXPECT_EQ(sites, b.totals.*field) << cfg.key();
            std::uint64_t regions = b.region_other.*field;
            for (const auto &row : b.regions)
                regions += row.stats.*field;
            EXPECT_EQ(regions, b.totals.*field) << cfg.key();
        }
        EXPECT_EQ(b.pollution_filter_hits, b.totals.pollution)
            << cfg.key();
        EXPECT_GE(b.sites_tracked, b.sites.size()) << cfg.key();
        EXPECT_GE(b.regions_tracked, b.regions.size()) << cfg.key();
    }

    /** Attribution on vs. off: IterStats must be bit-identical. */
    static void
    expectObservationOnly(const ExperimentConfig &cfg)
    {
        const ExperimentResult plain = runExperimentUncached(cfg);
        ExperimentConfig acfg = cfg;
        acfg.attrib.enabled = true;
        const ExperimentResult observed = runExperimentUncached(acfg);

        ASSERT_EQ(observed.iterations.size(), plain.iterations.size())
            << cfg.key();
        for (std::size_t i = 0; i < observed.iterations.size(); ++i) {
            const IterStats &a = observed.iterations[i];
            const IterStats &b = plain.iterations[i];
#define RNR_CHECK_FIELD(type, name)                                         \
    EXPECT_EQ(a.name, b.name) << cfg.key() << " iter " << i << " " << #name;
            RNR_ITER_STAT_FIELDS(RNR_CHECK_FIELD)
#undef RNR_CHECK_FIELD
        }
        EXPECT_EQ(observed.seq_table_bytes, plain.seq_table_bytes);
        EXPECT_EQ(observed.div_table_bytes, plain.div_table_bytes);
    }
};

TEST_F(AttribReconcileFixture, RnrReconcilesExactly)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    expectExactReconciliation(cfg);
}

TEST_F(AttribReconcileFixture, StreamReconcilesExactly)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Stream;
    expectExactReconciliation(cfg);
}

TEST_F(AttribReconcileFixture, RnrCombinedReconcilesExactly)
{
    // Both site families at once: PC sites from the stream side, lane
    // sites from the replay side.
    ExperimentConfig cfg;
    cfg.app = "spcg";
    cfg.input = "pdb1HYS";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::RnrCombined;
    expectExactReconciliation(cfg);
}

TEST_F(AttribReconcileFixture, DropletReconcilesExactly)
{
    ExperimentConfig cfg;
    cfg.app = "hyperanf";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Droplet;
    expectExactReconciliation(cfg);
}

TEST_F(AttribReconcileFixture, TinyTablesStillReconcile)
{
    // Pathologically small top-K caps: everything folds, totals hold.
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::RnrCombined;
    cfg.attrib.site_top_k = 2;
    cfg.attrib.region_top_k = 2;
    expectExactReconciliation(cfg);
}

TEST_F(AttribReconcileFixture, ObservationOnlyUnderBatchedKernel)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    expectObservationOnly(cfg);
}

TEST_F(AttribReconcileFixture, ObservationOnlyUnderLegacyKernel)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    setenv("RNR_KERNEL", "legacy", 1);
    expectObservationOnly(cfg);
}

TEST_F(AttribReconcileFixture, EnvGateMatchesConfigFlag)
{
    // RNR_ATTRIB=1 must produce the same blob as the config flag.
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;

    setenv("RNR_ATTRIB", "1", 1);
    const ExperimentResult via_env = runExperimentUncached(cfg);
    unsetenv("RNR_ATTRIB");
    ExperimentConfig fcfg = cfg;
    fcfg.attrib.enabled = true;
    const ExperimentResult via_flag = runExperimentUncached(fcfg);

    ASSERT_NE(via_env.attrib, nullptr);
    ASSERT_NE(via_flag.attrib, nullptr);
    EXPECT_EQ(attribJson(*via_env.attrib), attribJson(*via_flag.attrib));
}

} // namespace
} // namespace rnr
