#include <cstdlib>

#include <gtest/gtest.h>

#include "cpu/system.h"
#include "harness/runner.h"
#include "harness/system_counters.h"

namespace rnr {
namespace {

/** String-keyed reimplementation of the counter snapshot, kept
 *  deliberately independent of the X-macro so the test can catch a
 *  field wired to the wrong handle. */
IterStats
stringSnapshot(System &sys)
{
    const auto sum_l2 = [&sys](const std::string &key) {
        std::uint64_t total = 0;
        for (unsigned c = 0; c < sys.coreCount(); ++c)
            total += sys.mem().l2(c).stats().get(key);
        return total;
    };
    const auto sum_rnr = [&sys](const std::string &key) {
        std::uint64_t total = 0;
        for (unsigned c = 0; c < sys.coreCount(); ++c)
            if (RnrPrefetcher *r = asRnr(sys.mem().prefetcher(c)))
                total += r->stats().get(key);
        return total;
    };
    IterStats s;
    s.l2_accesses = sum_l2("accesses");
    s.l2_demand_misses = sum_l2("misses") - sum_l2("mshr_merges");
    s.pf_issued = sum_l2("prefetches_issued");
    s.pf_useful = sum_l2("prefetch_useful");
    s.pf_late_merged = sum_l2("demand_merged_into_prefetch");
    const StatGroup &d = sys.mem().dram().stats();
    s.dram_bytes_total = d.get("bytes_total");
    s.dram_bytes_demand = d.get("bytes_demand");
    s.dram_bytes_prefetch = d.get("bytes_prefetch");
    s.dram_bytes_metadata = d.get("bytes_metadata");
    s.dram_bytes_writeback = d.get("bytes_writeback");
    s.rnr_ontime = sum_rnr("pf_ontime");
    s.rnr_early = sum_rnr("pf_early");
    s.rnr_late = sum_rnr("pf_late");
    s.rnr_out_of_window = sum_rnr("pf_out_of_window");
    s.rnr_recorded = sum_rnr("recorded_misses");
    return s;
}

struct RunnerFixture : ::testing::Test {
    static void
    SetUpTestSuite()
    {
        // Keep tests hermetic: no file-cache reads or writes.
        setenv("RNR_CACHE", "0", 1);
    }
};

TEST_F(RunnerFixture, ConfigKeyDistinguishesDimensions)
{
    ExperimentConfig a, b;
    EXPECT_EQ(a.key(), b.key());
    b.prefetcher = PrefetcherKind::Rnr;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.window_size = 128;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.ideal_llc = true;
    EXPECT_NE(a.key(), b.key());
}

TEST_F(RunnerFixture, MakeWorkloadKnowsAllApps)
{
    for (const char *app : {"pagerank", "hyperanf"}) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.input = "amazon";
        EXPECT_NE(makeWorkload(cfg), nullptr) << app;
    }
    ExperimentConfig cg;
    cg.app = "spcg";
    cg.input = "pdb1HYS";
    EXPECT_NE(makeWorkload(cg), nullptr);
}

TEST_F(RunnerFixture, UnknownAppThrows)
{
    ExperimentConfig cfg;
    cfg.app = "bogus";
    EXPECT_THROW(makeWorkload(cfg), std::invalid_argument);
}

TEST_F(RunnerFixture, ExperimentProducesPerIterationStats)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    const ExperimentResult r = runExperiment(cfg);
    ASSERT_EQ(r.iterations.size(), 2u);
    for (const IterStats &it : r.iterations) {
        EXPECT_GT(it.cycles, 0u);
        EXPECT_GT(it.instructions, 0u);
        EXPECT_GT(it.l2_accesses, 0u);
        EXPECT_GT(it.dram_bytes_total, 0u);
    }
    EXPECT_GT(r.input_bytes, 0u);
    EXPECT_GT(r.target_bytes, 0u);
}

TEST_F(RunnerFixture, InProcessCacheReturnsIdenticalResult)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    const ExperimentResult a = runExperiment(cfg);
    const ExperimentResult b = runExperiment(cfg);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    EXPECT_EQ(a.steady().cycles, b.steady().cycles);
    EXPECT_EQ(a.steady().l2_demand_misses, b.steady().l2_demand_misses);
}

TEST_F(RunnerFixture, RnrRunRecordsMetadata)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    const ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.seq_table_bytes, 0u);
    EXPECT_GT(r.div_table_bytes, 0u);
    EXPECT_GT(r.first().rnr_recorded, 0u);
    EXPECT_GT(r.steady().pf_issued, 0u);
}

TEST_F(RunnerFixture, TypedDeltaMatchesHandComputedStringDelta)
{
    // 2-iteration spcg run with RnR: record pass then replay pass, so
    // every field of the snapshot (including the timeliness taxonomy)
    // sees non-zero traffic.
    ExperimentConfig cfg;
    cfg.app = "spcg";
    cfg.input = "pdb1HYS";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;

    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = cfg.cores;
    System sys(mcfg);
    std::unique_ptr<Workload> wl = makeWorkload(cfg);
    std::vector<std::unique_ptr<Prefetcher>> pfs;
    for (unsigned c = 0; c < cfg.cores; ++c) {
        pfs.push_back(createPrefetcher(cfg.prefetcher, {}));
        pfs.back()->configureFor(*wl, c);
        sys.mem().setPrefetcher(c, pfs.back().get());
    }

    std::vector<TraceBuffer> bufs(cfg.cores);
    SystemCounters typed_before = SystemCounters::capture(sys);
    IterStats hand_before = stringSnapshot(sys);
    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        wl->emitIteration(iter, iter + 1 == cfg.iterations, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        sys.run(ptrs);

        const SystemCounters typed_after = SystemCounters::capture(sys);
        const IterStats typed = typed_after.delta(typed_before);
        const IterStats hand_after = stringSnapshot(sys);

        EXPECT_EQ(typed.l2_accesses,
                  hand_after.l2_accesses - hand_before.l2_accesses);
        EXPECT_EQ(typed.l2_demand_misses,
                  hand_after.l2_demand_misses - hand_before.l2_demand_misses);
        EXPECT_EQ(typed.pf_issued,
                  hand_after.pf_issued - hand_before.pf_issued);
        EXPECT_EQ(typed.pf_useful,
                  hand_after.pf_useful - hand_before.pf_useful);
        EXPECT_EQ(typed.pf_late_merged,
                  hand_after.pf_late_merged - hand_before.pf_late_merged);
        EXPECT_EQ(typed.dram_bytes_total,
                  hand_after.dram_bytes_total - hand_before.dram_bytes_total);
        EXPECT_EQ(typed.dram_bytes_demand,
                  hand_after.dram_bytes_demand -
                      hand_before.dram_bytes_demand);
        EXPECT_EQ(typed.dram_bytes_prefetch,
                  hand_after.dram_bytes_prefetch -
                      hand_before.dram_bytes_prefetch);
        EXPECT_EQ(typed.dram_bytes_metadata,
                  hand_after.dram_bytes_metadata -
                      hand_before.dram_bytes_metadata);
        EXPECT_EQ(typed.dram_bytes_writeback,
                  hand_after.dram_bytes_writeback -
                      hand_before.dram_bytes_writeback);
        EXPECT_EQ(typed.rnr_ontime,
                  hand_after.rnr_ontime - hand_before.rnr_ontime);
        EXPECT_EQ(typed.rnr_early,
                  hand_after.rnr_early - hand_before.rnr_early);
        EXPECT_EQ(typed.rnr_late,
                  hand_after.rnr_late - hand_before.rnr_late);
        EXPECT_EQ(typed.rnr_out_of_window,
                  hand_after.rnr_out_of_window -
                      hand_before.rnr_out_of_window);
        EXPECT_EQ(typed.rnr_recorded,
                  hand_after.rnr_recorded - hand_before.rnr_recorded);

        // The run must actually exercise the counters being compared.
        EXPECT_GT(typed.l2_accesses, 0u);
        EXPECT_GT(typed.dram_bytes_total, 0u);
        if (iter == 0)
            EXPECT_GT(typed.rnr_recorded, 0u);
        else
            EXPECT_GT(typed.pf_issued, 0u);

        typed_before = typed_after;
        hand_before = hand_after;
    }
}

TEST_F(RunnerFixture, RunBaselineStripsPrefetcher)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    const ExperimentResult base = runBaseline(cfg);
    EXPECT_EQ(base.config.prefetcher, PrefetcherKind::None);
    EXPECT_EQ(base.steady().pf_issued, 0u);
}

} // namespace
} // namespace rnr
