#include <cstdlib>

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace rnr {
namespace {

struct RunnerFixture : ::testing::Test {
    static void
    SetUpTestSuite()
    {
        // Keep tests hermetic: no file-cache reads or writes.
        setenv("RNR_CACHE", "0", 1);
    }
};

TEST_F(RunnerFixture, ConfigKeyDistinguishesDimensions)
{
    ExperimentConfig a, b;
    EXPECT_EQ(a.key(), b.key());
    b.prefetcher = PrefetcherKind::Rnr;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.window_size = 128;
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.ideal_llc = true;
    EXPECT_NE(a.key(), b.key());
}

TEST_F(RunnerFixture, MakeWorkloadKnowsAllApps)
{
    for (const char *app : {"pagerank", "hyperanf"}) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.input = "amazon";
        EXPECT_NE(makeWorkload(cfg), nullptr) << app;
    }
    ExperimentConfig cg;
    cg.app = "spcg";
    cg.input = "pdb1HYS";
    EXPECT_NE(makeWorkload(cg), nullptr);
}

TEST_F(RunnerFixture, UnknownAppThrows)
{
    ExperimentConfig cfg;
    cfg.app = "bogus";
    EXPECT_THROW(makeWorkload(cfg), std::invalid_argument);
}

TEST_F(RunnerFixture, ExperimentProducesPerIterationStats)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    const ExperimentResult r = runExperiment(cfg);
    ASSERT_EQ(r.iterations.size(), 2u);
    for (const IterStats &it : r.iterations) {
        EXPECT_GT(it.cycles, 0u);
        EXPECT_GT(it.instructions, 0u);
        EXPECT_GT(it.l2_accesses, 0u);
        EXPECT_GT(it.dram_bytes_total, 0u);
    }
    EXPECT_GT(r.input_bytes, 0u);
    EXPECT_GT(r.target_bytes, 0u);
}

TEST_F(RunnerFixture, InProcessCacheReturnsIdenticalResult)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    const ExperimentResult a = runExperiment(cfg);
    const ExperimentResult b = runExperiment(cfg);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    EXPECT_EQ(a.steady().cycles, b.steady().cycles);
    EXPECT_EQ(a.steady().l2_demand_misses, b.steady().l2_demand_misses);
}

TEST_F(RunnerFixture, RnrRunRecordsMetadata)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    const ExperimentResult r = runExperiment(cfg);
    EXPECT_GT(r.seq_table_bytes, 0u);
    EXPECT_GT(r.div_table_bytes, 0u);
    EXPECT_GT(r.first().rnr_recorded, 0u);
    EXPECT_GT(r.steady().pf_issued, 0u);
}

TEST_F(RunnerFixture, RunBaselineStripsPrefetcher)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    const ExperimentResult base = runBaseline(cfg);
    EXPECT_EQ(base.config.prefetcher, PrefetcherKind::None);
    EXPECT_EQ(base.steady().pf_issued, 0u);
}

} // namespace
} // namespace rnr
