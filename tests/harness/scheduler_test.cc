/**
 * @file
 * Unit tests for the transport-agnostic scheduling core
 * (harness/scheduler.h): the sharded priority queue's ordering and
 * stealing behaviour, and the in-process backend's contract (every
 * cell's done() fires exactly once, with hit/simulate accounting).
 */
#include <cstdlib>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "harness/result_cache.h"
#include "harness/scheduler.h"

namespace rnr {
namespace {

TEST(ShardedWorkQueueTest, HigherPriorityPopsFirstFifoWithinEqual)
{
    ShardedWorkQueue q(1);
    q.push(10, 0);
    q.push(11, 5);
    q.push(12, 0);
    q.push(13, 5);

    std::size_t item = 0;
    ASSERT_TRUE(q.tryPop(0, item));
    EXPECT_EQ(item, 11u); // priority 5, pushed first
    ASSERT_TRUE(q.tryPop(0, item));
    EXPECT_EQ(item, 13u); // priority 5, pushed second
    ASSERT_TRUE(q.tryPop(0, item));
    EXPECT_EQ(item, 10u); // priority 0, FIFO
    ASSERT_TRUE(q.tryPop(0, item));
    EXPECT_EQ(item, 12u);
    EXPECT_FALSE(q.tryPop(0, item));
    EXPECT_EQ(q.pending(), 0u);
}

TEST(ShardedWorkQueueTest, IdleShardStealsUntilTheQueueIsDry)
{
    // Round-robin push spreads 6 items over 3 shards; draining
    // everything from shard 0 alone must succeed via stealing.
    ShardedWorkQueue q(3);
    for (std::size_t i = 0; i < 6; ++i)
        q.push(i);
    EXPECT_EQ(q.pending(), 6u);

    std::set<std::size_t> seen;
    std::size_t item = 0;
    while (q.tryPop(0, item))
        seen.insert(item);
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.tryPop(1, item));
}

TEST(InProcessBackendTest, EveryCellCompletesExactlyOnce)
{
    setenv("RNR_CACHE", "0", 1);
    setenv("RNR_PROGRESS", "0", 1);
    ResultCache::instance().clearForTest();

    std::vector<ExperimentConfig> cells;
    for (std::uint32_t w : {16u, 32u, 64u}) {
        ExperimentConfig cfg;
        cfg.app = "pagerank";
        cfg.input = "amazon";
        cfg.iterations = 1;
        cfg.cores = 1;
        cfg.prefetcher = PrefetcherKind::Rnr;
        cfg.window_size = w;
        cells.push_back(cfg);
    }

    InProcessBackend backend(2);
    EXPECT_EQ(backend.name(), "in-process");

    std::mutex mu;
    std::vector<int> done_count(cells.size(), 0);
    std::size_t simulated = 0;
    backend.run(cells, {}, [&](std::size_t i, CellOutcome outcome) {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_LT(i, cells.size());
        ++done_count[i];
        EXPECT_EQ(outcome.status, CellOutcome::Status::Done);
        EXPECT_FALSE(outcome.result.iterations.empty());
        if (!outcome.was_cached)
            ++simulated;
    });

    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(done_count[i], 1) << "cell " << i;
    EXPECT_EQ(simulated, cells.size());
    ResultCache::instance().clearForTest();
}

} // namespace
} // namespace rnr
