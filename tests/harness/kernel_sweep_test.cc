/**
 * @file
 * Cross-config kernel parity sweep: every cell of a small evaluation
 * matrix must produce bit-identical IterStats under the batched kernel
 * (the default) and the RNR_KERNEL=legacy seed path.  This is the
 * harness-level counterpart of tests/cpu/kernel_parity_test.cc — it
 * goes through runExperimentUncached(), so the workload emission, the
 * four-core machine, the prefetcher wiring and the metadata accounting
 * are all the real thing.
 *
 * The file cache and trace store are disabled: a cache hit would
 * compare one simulation against itself and prove nothing.
 */
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace rnr {
namespace {

struct KernelSweepFixture : ::testing::Test {
    void
    SetUp() override
    {
        setenv("RNR_CACHE", "0", 1);
        setenv("RNR_TRACE_STORE", "0", 1);
        unsetenv("RNR_KERNEL");
    }

    void TearDown() override { unsetenv("RNR_KERNEL"); }

    /** Runs @p cfg under both kernels and compares field-by-field. */
    static void
    expectKernelParity(const ExperimentConfig &cfg)
    {
        setenv("RNR_KERNEL", "legacy", 1);
        const ExperimentResult legacy = runExperimentUncached(cfg);
        unsetenv("RNR_KERNEL");
        const ExperimentResult batched = runExperimentUncached(cfg);

        ASSERT_EQ(batched.iterations.size(), legacy.iterations.size())
            << cfg.key();
        for (std::size_t i = 0; i < batched.iterations.size(); ++i) {
            const IterStats &a = batched.iterations[i];
            const IterStats &b = legacy.iterations[i];
#define RNR_CHECK_FIELD(type, name)                                         \
    EXPECT_EQ(a.name, b.name) << cfg.key() << " iter " << i << " " << #name;
            RNR_ITER_STAT_FIELDS(RNR_CHECK_FIELD)
#undef RNR_CHECK_FIELD
        }
        EXPECT_EQ(batched.seq_table_bytes, legacy.seq_table_bytes)
            << cfg.key();
        EXPECT_EQ(batched.div_table_bytes, legacy.div_table_bytes)
            << cfg.key();
    }
};

TEST_F(KernelSweepFixture, PagerankNoPrefetcher)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    expectKernelParity(cfg);
}

TEST_F(KernelSweepFixture, PagerankStream)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Stream;
    expectKernelParity(cfg);
}

TEST_F(KernelSweepFixture, PagerankRnr)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    expectKernelParity(cfg);
}

TEST_F(KernelSweepFixture, SpcgRnrSmallWindow)
{
    // Sparse CG with a non-default window size: window closes and pace
    // recomputes land at different trace positions than PageRank's.
    ExperimentConfig cfg;
    cfg.app = "spcg";
    cfg.input = "pdb1HYS";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    cfg.window_size = 1024;
    expectKernelParity(cfg);
}

TEST_F(KernelSweepFixture, HyperanfRnrIdealLlc)
{
    ExperimentConfig cfg;
    cfg.app = "hyperanf";
    cfg.input = "amazon";
    cfg.iterations = 2;
    cfg.prefetcher = PrefetcherKind::Rnr;
    cfg.ideal_llc = true;
    expectKernelParity(cfg);
}

} // namespace
} // namespace rnr
