#include <gtest/gtest.h>

#include <cmath>

#include "harness/metrics.h"

namespace rnr {
namespace {

ExperimentResult
makeResult(Tick first_cycles, Tick steady_cycles)
{
    ExperimentResult r;
    IterStats a, b;
    a.cycles = first_cycles;
    a.instructions = 1000000;
    b.cycles = steady_cycles;
    b.instructions = 1000000;
    r.iterations = {a, b};
    return r;
}

TEST(MetricsTest, AmortizedCyclesWeightsSteadyState)
{
    ExperimentResult r = makeResult(200, 100);
    EXPECT_DOUBLE_EQ(amortizedCycles(r, 100), 200 + 99 * 100.0);
    EXPECT_DOUBLE_EQ(amortizedCycles(r, 1), 200.0);
}

TEST(MetricsTest, SpeedupIsBaselineOverConfig)
{
    ExperimentResult base = makeResult(1000, 1000);
    ExperimentResult fast = makeResult(1200, 400);
    // Amortised: (1000*100) / (1200 + 99*400) = 100000 / 40800.
    EXPECT_NEAR(speedup(fast, base, 100), 100000.0 / 40800.0, 1e-9);
}

TEST(MetricsTest, MpkiUsesSteadyIteration)
{
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().l2_demand_misses = 5000;
    EXPECT_DOUBLE_EQ(mpki(r), 5.0);
}

TEST(MetricsTest, CoverageAgainstBaselineMisses)
{
    ExperimentResult base = makeResult(100, 100);
    base.iterations.back().l2_demand_misses = 1000;
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().pf_useful = 800;
    r.iterations.back().pf_late_merged = 100;
    EXPECT_DOUBLE_EQ(coverage(r, base), 0.9);
}

TEST(MetricsTest, CoverageClampedToOne)
{
    ExperimentResult base = makeResult(100, 100);
    base.iterations.back().l2_demand_misses = 10;
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().pf_useful = 500;
    EXPECT_DOUBLE_EQ(coverage(r, base), 1.0);
}

TEST(MetricsTest, AccuracyIsUsefulOverIssued)
{
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().pf_issued = 1000;
    r.iterations.back().pf_useful = 950;
    r.iterations.back().pf_late_merged = 25;
    EXPECT_DOUBLE_EQ(accuracy(r), 0.975);
}

TEST(MetricsTest, AccuracyZeroWhenNothingIssued)
{
    ExperimentResult r = makeResult(100, 100);
    EXPECT_DOUBLE_EQ(accuracy(r), 0.0);
}

TEST(MetricsTest, TrafficOverheadRelativeToBaseline)
{
    ExperimentResult base = makeResult(100, 100);
    base.iterations.back().dram_bytes_total = 1000;
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().dram_bytes_total = 1120;
    EXPECT_NEAR(trafficOverhead(r, base), 0.12, 1e-12);
}

TEST(MetricsTest, StorageOverheadVsInput)
{
    ExperimentResult r = makeResult(100, 100);
    r.input_bytes = 1000;
    r.seq_table_bytes = 110;
    r.div_table_bytes = 10;
    EXPECT_DOUBLE_EQ(storageOverhead(r), 0.12);
}

TEST(MetricsTest, RecordOverheadComparesFirstIterations)
{
    ExperimentResult base = makeResult(1000, 500);
    ExperimentResult r = makeResult(1010, 400);
    EXPECT_NEAR(recordOverhead(r, base), 0.01, 1e-12);
}

TEST(MetricsTest, TimelinessSharesSumToOne)
{
    ExperimentResult r = makeResult(100, 100);
    IterStats &it = r.iterations.back();
    it.rnr_ontime = 90;
    it.rnr_early = 5;
    it.rnr_late = 3;
    it.rnr_out_of_window = 2;
    const TimelinessBreakdown b = timeliness(r);
    EXPECT_DOUBLE_EQ(b.ontime, 0.90);
    EXPECT_DOUBLE_EQ(b.early, 0.05);
    EXPECT_DOUBLE_EQ(b.late, 0.03);
    EXPECT_DOUBLE_EQ(b.out_of_window, 0.02);
    EXPECT_NEAR(b.ontime + b.early + b.late + b.out_of_window, 1.0,
                1e-12);
}

TEST(MetricsTest, TimelinessHandComputedNonRoundShares)
{
    // 7 + 13 + 17 + 23 = 60 classified prefetches; the shares are the
    // exact rationals n/60, not rounded percentages.
    ExperimentResult r = makeResult(100, 100);
    IterStats &it = r.iterations.back();
    it.rnr_ontime = 7;
    it.rnr_early = 13;
    it.rnr_late = 17;
    it.rnr_out_of_window = 23;
    const TimelinessBreakdown b = timeliness(r);
    EXPECT_DOUBLE_EQ(b.ontime, 7.0 / 60.0);
    EXPECT_DOUBLE_EQ(b.early, 13.0 / 60.0);
    EXPECT_DOUBLE_EQ(b.late, 17.0 / 60.0);
    EXPECT_DOUBLE_EQ(b.out_of_window, 23.0 / 60.0);
}

TEST(MetricsTest, TimelinessZeroWhenNothingClassified)
{
    // No classified prefetches: all shares 0, never NaN.
    const ExperimentResult r = makeResult(100, 100);
    const TimelinessBreakdown b = timeliness(r);
    EXPECT_DOUBLE_EQ(b.ontime, 0.0);
    EXPECT_DOUBLE_EQ(b.early, 0.0);
    EXPECT_DOUBLE_EQ(b.late, 0.0);
    EXPECT_DOUBLE_EQ(b.out_of_window, 0.0);
}

TEST(MetricsTest, TimelinessReadsTheSteadyIteration)
{
    // Counters on the first (record) iteration must not leak into the
    // breakdown, which is defined over the steady-state replay pass.
    ExperimentResult r = makeResult(100, 100);
    r.iterations.front().rnr_ontime = 1000;
    r.iterations.back().rnr_ontime = 1;
    r.iterations.back().rnr_early = 3;
    const TimelinessBreakdown b = timeliness(r);
    EXPECT_DOUBLE_EQ(b.ontime, 0.25);
    EXPECT_DOUBLE_EQ(b.early, 0.75);
}

// ---- Divide-by-zero audit: every ratio with a legitimately-zero
// denominator returns the documented 0.0 sentinel, never inf/NaN
// (metrics.h "Degenerate inputs"). ----

TEST(MetricsTest, CoverageZeroWhenBaselineHadNoMisses)
{
    ExperimentResult base = makeResult(100, 100); // zero misses
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().pf_useful = 500;
    EXPECT_DOUBLE_EQ(coverage(r, base), 0.0);
}

TEST(MetricsTest, TrafficOverheadZeroWhenBaselineMovedNoBytes)
{
    ExperimentResult base = makeResult(100, 100); // zero DRAM bytes
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().dram_bytes_total = 4096;
    EXPECT_DOUBLE_EQ(trafficOverhead(r, base), 0.0);
}

TEST(MetricsTest, MpkiZeroWhenNoInstructionsRetired)
{
    ExperimentResult r = makeResult(100, 100);
    r.iterations.back().instructions = 0;
    r.iterations.back().l2_demand_misses = 5000;
    EXPECT_DOUBLE_EQ(mpki(r), 0.0);
}

TEST(MetricsTest, SpeedupZeroWhenConfigHasZeroCycles)
{
    ExperimentResult base = makeResult(1000, 1000);
    ExperimentResult degenerate = makeResult(0, 0);
    const double s = speedup(degenerate, base);
    EXPECT_DOUBLE_EQ(s, 0.0);
    EXPECT_TRUE(std::isfinite(s));
}

TEST(MetricsTest, StorageOverheadZeroForEmptyInput)
{
    ExperimentResult r = makeResult(100, 100);
    r.seq_table_bytes = 64; // metadata but no input to relate it to
    EXPECT_DOUBLE_EQ(storageOverhead(r), 0.0);
}

TEST(MetricsTest, RecordOverheadZeroWhenBaselineFirstIterIsEmpty)
{
    ExperimentResult base = makeResult(0, 500);
    ExperimentResult r = makeResult(1000, 500);
    EXPECT_DOUBLE_EQ(recordOverhead(r, base), 0.0);
}

TEST(MetricsTest, GeomeanOfKnownValues)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({3.0, 3.0, 3.0}), 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

} // namespace
} // namespace rnr
