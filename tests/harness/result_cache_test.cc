/**
 * @file
 * Crash- and concurrency-safety tests for the persistent result cache
 * (harness/result_cache.h) beyond what the sweep tests cover:
 *
 *  - a torn final line (a crash between write and fsync under the old
 *    scheme) is skipped, never fatal, and never clobbers good lines;
 *  - a rewrite merges lines other processes published since this
 *    process loaded the file (the farm-worker discipline), so two
 *    writers append to, never erase, each other's results;
 *  - noteExternal() memoizes without rewriting the file.
 */
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/result_cache.h"
#include "harness/runner.h"

namespace rnr {
namespace {

ExperimentConfig
tinyConfig(std::uint32_t window = 0)
{
    ExperimentConfig cfg;
    cfg.app = "pagerank";
    cfg.input = "amazon";
    cfg.iterations = 1;
    cfg.cores = 1;
    cfg.prefetcher =
        window ? PrefetcherKind::Rnr : PrefetcherKind::None;
    cfg.window_size = window;
    return cfg;
}

struct ResultCacheFixture : ::testing::Test {
    std::string cache_path_;

    void
    SetUp() override
    {
        cache_path_ = ::testing::TempDir() + "result_cache_test_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      ".cache";
        std::remove(cache_path_.c_str());
        std::remove((cache_path_ + ".lock").c_str());
        setenv("RNR_CACHE", "1", 1);
        setenv("RNR_CACHE_FILE", cache_path_.c_str(), 1);
        setenv("RNR_PROGRESS", "0", 1);
        ResultCache::instance().clearForTest();
    }

    void
    TearDown() override
    {
        std::remove(cache_path_.c_str());
        std::remove((cache_path_ + ".lock").c_str());
        setenv("RNR_CACHE", "0", 1);
        ResultCache::instance().clearForTest();
    }

    std::vector<std::string>
    cacheFileLines() const
    {
        std::vector<std::string> lines;
        std::ifstream in(cache_path_);
        std::string line;
        while (std::getline(in, line)) {
            if (!line.empty())
                lines.push_back(line);
        }
        return lines;
    }
};

TEST_F(ResultCacheFixture, TornFinalLineIsSkippedNotFatal)
{
    const ExperimentConfig cfg = tinyConfig();
    const ExperimentResult first = runExperiment(cfg);
    ASSERT_EQ(cacheFileLines().size(), 1u);

    // Simulate a writer killed mid-line: a second entry whose value
    // payload was cut short, with no trailing newline.
    {
        std::ofstream out(cache_path_, std::ios::app);
        const ExperimentConfig other = tinyConfig(64);
        out << other.key() << "|12 34"; // truncated, torn, unterminated
    }
    ResultCache::instance().clearForTest();

    // The surviving good line still hits; the torn one is counted.
    const std::uint64_t before = experimentsSimulated();
    const ExperimentResult again = runExperiment(cfg);
    EXPECT_EQ(experimentsSimulated(), before);
    EXPECT_EQ(ResultCache::serialize(again),
              ResultCache::serialize(first));
    EXPECT_GE(ResultCache::instance().corruptLinesSkipped(), 1u);

    // And the next rewrite drops the torn line instead of propagating
    // it: every line in the healed file parses.
    runExperiment(tinyConfig(128));
    for (const std::string &line : cacheFileLines()) {
        const auto bar = line.find('|');
        ASSERT_NE(bar, std::string::npos) << line;
        ExperimentResult parsed;
        EXPECT_TRUE(
            ResultCache::deserialize(line.substr(bar + 1), parsed))
            << line;
    }
}

TEST_F(ResultCacheFixture, RewriteMergesLinesPublishedByOtherProcesses)
{
    // Capture a valid foreign line by running a different cell against
    // a scratch cache file.
    const std::string scratch = cache_path_ + ".scratch";
    setenv("RNR_CACHE_FILE", scratch.c_str(), 1);
    ResultCache::instance().clearForTest();
    runExperiment(tinyConfig(64));
    std::string foreign_line;
    {
        std::ifstream in(scratch);
        ASSERT_TRUE(std::getline(in, foreign_line));
    }
    std::remove(scratch.c_str());
    std::remove((scratch + ".lock").c_str());

    // This "process" loads the main file (empty), runs cell A...
    setenv("RNR_CACHE_FILE", cache_path_.c_str(), 1);
    ResultCache::instance().clearForTest();
    runExperiment(tinyConfig());
    ASSERT_EQ(cacheFileLines().size(), 1u);

    // ...meanwhile "another process" publishes the foreign line...
    {
        std::ofstream out(cache_path_, std::ios::app);
        out << foreign_line << "\n";
    }

    // ...and this process's next store must keep it: the rewrite
    // re-merges the on-disk file under the lock instead of clobbering
    // it with this process's stale view.
    runExperiment(tinyConfig(128));
    const std::vector<std::string> lines = cacheFileLines();
    EXPECT_EQ(lines.size(), 3u);
    bool saw_foreign = false;
    for (const std::string &line : lines)
        saw_foreign = saw_foreign || line == foreign_line;
    EXPECT_TRUE(saw_foreign)
        << "the foreign process's line was clobbered by the rewrite";
}

TEST_F(ResultCacheFixture, NoteExternalMemoizesWithoutRewritingTheFile)
{
    const ExperimentConfig cfg = tinyConfig();
    ExperimentResult r = runExperimentUncached(cfg);
    r.config = cfg;

    ResultCache::instance().noteExternal(cfg.key(), r);
    // Memo hit: no simulation, no file.
    const std::uint64_t before = experimentsSimulated();
    ExperimentResult hit;
    ASSERT_TRUE(ResultCache::instance().lookup(cfg, hit));
    EXPECT_EQ(experimentsSimulated(), before);
    EXPECT_EQ(ResultCache::serialize(hit), ResultCache::serialize(r));
    EXPECT_TRUE(cacheFileLines().empty())
        << "noteExternal must not rewrite the file";
}

} // namespace
} // namespace rnr
