#include <gtest/gtest.h>

#include "mem/cache.h"

namespace rnr {
namespace {

CacheConfig
srripCache(unsigned ways = 4)
{
    CacheConfig c;
    c.name = "SRRIP";
    c.size_bytes = std::uint64_t{ways} * kBlockSize; // one set
    c.ways = ways;
    c.replacement = ReplacementPolicy::Srrip;
    return c;
}

TEST(SrripTest, ReusedLinesSurviveStreamingScan)
{
    Cache c(srripCache(4));
    // Two hot blocks with proven reuse.
    c.insert(1, 0, false, false);
    c.insert(2, 0, false, false);
    c.access(1, 1);
    c.access(2, 2);
    // A streaming burst of never-reused blocks (one ageing round's
    // worth; a longer untouched scan would age the hot lines out too —
    // in real workloads the hot lines keep being re-referenced).
    for (Addr b = 100; b < 104; ++b)
        c.insert(b, 10, false, false);
    // Under LRU the burst flushes blocks 1 and 2; SRRIP makes the scan
    // evict itself instead.
    EXPECT_NE(c.peek(1), nullptr);
    EXPECT_NE(c.peek(2), nullptr);
}

TEST(SrripTest, LruCacheFlushedByTheSameScan)
{
    CacheConfig cfg = srripCache(4);
    cfg.replacement = ReplacementPolicy::Lru;
    Cache c(cfg);
    c.insert(1, 0, false, false);
    c.insert(2, 0, false, false);
    c.access(1, 1);
    c.access(2, 2);
    for (Addr b = 100; b < 104; ++b)
        c.insert(b, 10, false, false);
    EXPECT_EQ(c.peek(1), nullptr);
    EXPECT_EQ(c.peek(2), nullptr);
}

TEST(SrripTest, AgeingAlwaysFindsAVictim)
{
    Cache c(srripCache(2));
    // Fill the set and make every line "near" (rrpv 0).
    c.insert(1, 0, false, false);
    c.insert(2, 0, false, false);
    c.access(1, 1);
    c.access(2, 2);
    // Insert must still succeed by ageing the set.
    EvictResult ev = c.insert(3, 5, false, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_NE(c.peek(3), nullptr);
    EXPECT_EQ(c.residentCount(), 2u);
}

} // namespace
} // namespace rnr
