/**
 * @file
 * Golden-model property test: the set-associative Cache must agree with
 * a brute-force reference model (per-set recency lists) over long random
 * operation sequences, for every geometry.
 */
#include <list>
#include <map>

#include <gtest/gtest.h>

#include "mem/cache.h"
#include "sim/rng.h"

namespace rnr {
namespace {

/** Brute-force reference: per-set LRU lists of resident blocks. */
class ReferenceCache
{
  public:
    ReferenceCache(unsigned sets, unsigned ways)
        : sets_(sets), ways_(ways), lru_(sets)
    {
    }

    bool
    access(Addr block)
    {
        auto &set = lru_[block % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == block) {
                set.erase(it);
                set.push_front(block);
                return true;
            }
        }
        return false;
    }

    /** Returns the evicted block, or ~0 when none. */
    Addr
    insert(Addr block)
    {
        auto &set = lru_[block % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == block)
                return ~Addr{0}; // already resident: no change
        }
        Addr victim = ~Addr{0};
        if (set.size() >= ways_) {
            victim = set.back();
            set.pop_back();
        }
        set.push_front(block);
        return victim;
    }

    bool
    contains(Addr block) const
    {
        const auto &set = lru_[block % sets_];
        for (Addr b : set) {
            if (b == block)
                return true;
        }
        return false;
    }

  private:
    unsigned sets_;
    unsigned ways_;
    std::vector<std::list<Addr>> lru_;
};

class CacheGoldenTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGoldenTest, AgreesWithReferenceOverRandomOps)
{
    const auto [ways, log_sets] = GetParam();
    const unsigned sets = 1u << log_sets;

    CacheConfig cfg;
    cfg.name = "golden";
    cfg.ways = ways;
    cfg.size_bytes = std::uint64_t{sets} * ways * kBlockSize;
    Cache cache(cfg);
    ReferenceCache ref(sets, ways);

    Rng rng(ways * 1000 + log_sets);
    Tick t = 0;
    for (int op = 0; op < 20000; ++op) {
        const Addr block = rng.below(sets * ways * 4);
        ++t;
        if (rng.below(2) == 0) {
            // Demand access: hit/miss must agree.
            const bool model_hit = cache.access(block, t) != nullptr;
            const bool ref_hit = ref.access(block);
            ASSERT_EQ(model_hit, ref_hit) << "op " << op;
        } else {
            // Fill: eviction choice must agree (deterministic LRU).
            EvictResult ev = cache.insert(block, t, false, false);
            const Addr ref_victim = ref.insert(block);
            if (ref_victim == ~Addr{0}) {
                ASSERT_FALSE(ev.valid && ev.block != block) << "op " << op;
            } else {
                ASSERT_TRUE(ev.valid) << "op " << op;
                ASSERT_EQ(ev.block, ref_victim) << "op " << op;
            }
        }
    }

    // Final residency agrees block by block.
    for (Addr block = 0; block < sets * ways * 4; ++block)
        ASSERT_EQ(cache.peek(block) != nullptr, ref.contains(block))
            << block;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGoldenTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(0u, 2u, 4u)));

} // namespace
} // namespace rnr
