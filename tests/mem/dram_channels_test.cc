#include <gtest/gtest.h>

#include "mem/dram.h"

namespace rnr {
namespace {

DramConfig
cfg(unsigned channels)
{
    DramConfig d;
    d.channels = channels;
    d.banks = 4;
    d.read_queue = 1024;
    d.tCAS = d.tRCD = d.tRP = 20;
    d.tBURST = 8;
    d.row_bytes = 1024;
    return d;
}

/** Last completion of a burst of @p n sequential block reads at t=0. */
Tick
burstFinish(Dram &d, int n)
{
    Tick last = 0;
    for (int i = 0; i < n; ++i)
        last = std::max(last, d.read(Addr(i) * kBlockSize, 0,
                                     ReqOrigin::Demand));
    return last;
}

TEST(DramChannelsTest, MoreChannelsMeanMoreBandwidth)
{
    Dram one(cfg(1)), two(cfg(2)), four(cfg(4));
    const Tick t1 = burstFinish(one, 256);
    const Tick t2 = burstFinish(two, 256);
    const Tick t4 = burstFinish(four, 256);
    // 256 bursts at tBURST=8: channel-bound; doubling channels roughly
    // halves the finish time.
    EXPECT_GT(t1, t2 * 3 / 2);
    EXPECT_GT(t2, t4 * 3 / 2);
}

TEST(DramChannelsTest, SingleChannelBehaviourUnchanged)
{
    // channels=1 must degenerate to the classic single-channel model.
    Dram d(cfg(1));
    const Tick t1 = d.read(0, 0, ReqOrigin::Demand);
    EXPECT_EQ(t1, 20u * 3 + 8);
    const Tick t2 = d.read(0, 1000, ReqOrigin::Demand);
    EXPECT_EQ(t2, 1000 + 20 + 8); // row hit
}

TEST(DramChannelsTest, ChannelsPartitionBlocks)
{
    // With 2 channels, blocks 0 and 1 are on different channels: two
    // simultaneous reads do not serialise on one data bus.
    Dram d(cfg(2));
    const Tick a = d.read(0, 0, ReqOrigin::Demand);
    const Tick b = d.read(kBlockSize, 0, ReqOrigin::Demand);
    EXPECT_EQ(a, b); // identical idle paths, independent channels
}

} // namespace
} // namespace rnr
