#include <gtest/gtest.h>

#include "mem/tlb.h"

namespace rnr {
namespace {

TlbConfig
cfg()
{
    TlbConfig t;
    t.dtlb_entries = 4;
    t.stlb_entries = 16;
    t.stlb_latency = 8;
    t.walk_latency = 60;
    return t;
}

TEST(TlbTest, FirstAccessWalks)
{
    Tlb t(cfg());
    EXPECT_EQ(t.translate(0x1000), 60u);
    EXPECT_EQ(t.stats().get("walks"), 1u);
}

TEST(TlbTest, RepeatHitsDtlbForFree)
{
    Tlb t(cfg());
    t.translate(0x1000);
    EXPECT_EQ(t.translate(0x1400), 0u); // same page
    EXPECT_EQ(t.stats().get("dtlb_hits"), 1u);
}

TEST(TlbTest, DtlbConflictFallsBackToStlb)
{
    Tlb t(cfg());
    t.translate(0x1000);              // page 1 -> dtlb slot 1
    t.translate((1 + 4) * 0x1000ull); // page 5 -> same dtlb slot, walks
    // Page 1 was evicted from the DTLB but still sits in the STLB.
    EXPECT_EQ(t.translate(0x1000), 8u);
    EXPECT_EQ(t.stats().get("stlb_hits"), 1u);
}

TEST(TlbTest, FlushForgetsEverything)
{
    Tlb t(cfg());
    t.translate(0x1000);
    t.flush();
    EXPECT_EQ(t.translate(0x1000), 60u);
    EXPECT_EQ(t.stats().get("walks"), 2u);
}

} // namespace
} // namespace rnr
