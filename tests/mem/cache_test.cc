#include <gtest/gtest.h>

#include "mem/cache.h"

namespace rnr {
namespace {

CacheConfig
smallCache(unsigned ways = 2, std::uint64_t bytes = 2 * 1024)
{
    CacheConfig c;
    c.name = "T";
    c.size_bytes = bytes; // 2 KB, 2-way -> 16 sets
    c.ways = ways;
    c.mshrs = 4;
    c.latency = 4;
    return c;
}

TEST(CacheTest, MissThenHit)
{
    Cache c(smallCache());
    EXPECT_EQ(c.access(100, 0), nullptr);
    c.insert(100, 50, false, false);
    ASSERT_NE(c.access(100, 60), nullptr);
    EXPECT_EQ(c.stats().get("hits"), 1u);
    EXPECT_EQ(c.stats().get("misses"), 1u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed)
{
    Cache c(smallCache(2));
    const unsigned sets = c.config().sets();
    // Three blocks in the same set of a 2-way cache.
    const Addr a = 0, b = sets, d = 2 * sets;
    c.insert(a, 0, false, false);
    c.insert(b, 1, false, false);
    c.access(a, 10); // make b the LRU line
    EvictResult ev = c.insert(d, 20, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.block, b);
    EXPECT_NE(c.peek(a), nullptr);
    EXPECT_EQ(c.peek(b), nullptr);
}

TEST(CacheTest, DirtyVictimReportsWriteback)
{
    Cache c(smallCache(1));
    const unsigned sets = c.config().sets();
    c.insert(7, 0, false, /*dirty=*/true);
    EvictResult ev = c.insert(7 + sets, 5, false, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(c.stats().get("writebacks"), 1u);
}

TEST(CacheTest, LateFillVisibleThroughFillTime)
{
    Cache c(smallCache());
    c.insert(42, /*fill_time=*/500, true, false);
    CacheLine *line = c.access(42, 100); // access before fill completes
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->fill_time, 500u);
    EXPECT_EQ(c.stats().get("hits_on_inflight_fill"), 1u);
}

TEST(CacheTest, PrefetchUsefulCountedOnceOnFirstReference)
{
    Cache c(smallCache());
    c.insert(9, 0, /*prefetched=*/true, false);
    c.access(9, 10);
    c.access(9, 20);
    EXPECT_EQ(c.stats().get("prefetch_useful"), 1u);
}

TEST(CacheTest, UnreferencedPrefetchEvictionCounted)
{
    Cache c(smallCache(1));
    const unsigned sets = c.config().sets();
    c.insert(3, 0, /*prefetched=*/true, false);
    EvictResult ev = c.insert(3 + sets, 5, false, false);
    EXPECT_TRUE(ev.prefetched_unused);
    EXPECT_EQ(c.stats().get("prefetch_evicted_unused"), 1u);
}

TEST(CacheTest, ReinsertResidentRefreshesEarlierFill)
{
    Cache c(smallCache());
    c.insert(5, 300, false, false);
    EvictResult ev = c.insert(5, 200, true, false);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(c.peek(5)->fill_time, 200u);
    // A later fill must not delay an earlier one.
    c.insert(5, 900, false, false);
    EXPECT_EQ(c.peek(5)->fill_time, 200u);
}

TEST(CacheTest, MarkDirtyOnResidentOnly)
{
    Cache c(smallCache());
    c.markDirty(77, 0); // absent: no crash, no insert
    EXPECT_EQ(c.peek(77), nullptr);
    c.insert(77, 0, false, false);
    c.markDirty(77, 5);
    EXPECT_TRUE(c.peek(77)->dirty);
}

TEST(CacheTest, ResetInvalidatesEverything)
{
    Cache c(smallCache());
    c.insert(1, 0, false, false);
    c.insert(2, 0, false, false);
    EXPECT_EQ(c.residentCount(), 2u);
    c.reset();
    EXPECT_EQ(c.residentCount(), 0u);
    EXPECT_EQ(c.peek(1), nullptr);
}

TEST(CacheTest, PeekDoesNotPerturbLru)
{
    Cache c(smallCache(2));
    const unsigned sets = c.config().sets();
    const Addr a = 0, b = sets, d = 2 * sets;
    c.insert(a, 0, false, false);
    c.insert(b, 1, false, false);
    c.peek(a); // must NOT refresh a's recency
    EvictResult ev = c.insert(d, 5, false, false);
    EXPECT_EQ(ev.block, a); // a is still the LRU line
}

/** Property: inserting N distinct blocks never exceeds capacity. */
class CacheFillTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheFillTest, OccupancyBoundedByCapacity)
{
    Cache c(smallCache(GetParam()));
    const std::size_t capacity =
        c.config().sets() * static_cast<std::size_t>(c.config().ways);
    for (Addr blk = 0; blk < 4 * capacity; ++blk)
        c.insert(blk, 0, false, false);
    EXPECT_EQ(c.residentCount(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheFillTest,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace rnr
