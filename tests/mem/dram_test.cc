#include <gtest/gtest.h>

#include "mem/dram.h"

namespace rnr {
namespace {

DramConfig
cfg()
{
    DramConfig d;
    d.banks = 4;
    d.read_queue = 8;
    d.write_queue = 8;
    d.tCAS = d.tRCD = d.tRP = 20;
    d.tBURST = 2;
    d.row_bytes = 1024;
    return d;
}

TEST(DramTest, RowMissThenRowHitLatency)
{
    Dram d(cfg());
    // First access opens the row: tRP + tRCD + tCAS + tBURST.
    const Tick t1 = d.read(0, 0, ReqOrigin::Demand);
    EXPECT_EQ(t1, 20u * 3 + 2);
    // Same row, much later (no queueing): row hit = tCAS + tBURST.
    const Tick t2 = d.read(0, 1000, ReqOrigin::Demand);
    EXPECT_EQ(t2, 1000 + 20 + 2);
    EXPECT_EQ(d.stats().get("row_hits"), 1u);
    EXPECT_EQ(d.stats().get("row_misses"), 1u);
}

TEST(DramTest, ConsecutiveBlocksInterleaveBanks)
{
    Dram d(cfg());
    // Blocks 0..3 map to banks 0..3; their accesses overlap, so the
    // completion spread is burst-limited, not access-limited.
    Tick last = 0;
    for (Addr blk = 0; blk < 4; ++blk)
        last = d.read(blk * kBlockSize, 0, ReqOrigin::Demand);
    EXPECT_LT(last, 62u + 4 * 2 + 1);
}

TEST(DramTest, SameBankSerializes)
{
    Dram d(cfg());
    const DramConfig c = cfg();
    // Two different rows on the same bank (stride = banks * row span).
    const Addr row_span = Addr{c.banks} * c.row_bytes;
    const Tick t1 = d.read(0, 0, ReqOrigin::Demand);
    const Tick t2 = d.read(row_span, 0, ReqOrigin::Demand);
    EXPECT_GE(t2, t1 + 3 * 20); // second waits for the bank, row miss
}

TEST(DramTest, ChannelEnforcesBandwidth)
{
    DramConfig c = cfg();
    c.banks = 64;
    c.read_queue = 1024;
    Dram d(c);
    // 100 reads arriving at once on distinct banks: channel bursts
    // serialise at tBURST each.
    Tick last = 0;
    for (int i = 0; i < 100; ++i)
        last = std::max(last, d.read(Addr(i) * kBlockSize, 0,
                                     ReqOrigin::Demand));
    EXPECT_GE(last, 100u * c.tBURST);
}

TEST(DramTest, ReadQueueFullStalls)
{
    DramConfig c = cfg();
    c.read_queue = 4;
    Dram d(c);
    for (int i = 0; i < 12; ++i)
        d.read(Addr(i) * kBlockSize, 0, ReqOrigin::Demand);
    EXPECT_GT(d.stats().get("read_queue_full_stalls"), 0u);
}

TEST(DramTest, WriteQueueDrainsAtHighWatermark)
{
    Dram d(cfg()); // queue 8, drain at 6 down to 2
    for (int i = 0; i < 5; ++i)
        d.write(Addr(i) * kBlockSize, 0, ReqOrigin::Writeback);
    EXPECT_EQ(d.stats().get("write_drains"), 0u);
    d.write(5 * kBlockSize, 0, ReqOrigin::Writeback);
    EXPECT_EQ(d.stats().get("write_drains"), 1u);
    EXPECT_EQ(d.writeQueueDepth(), 2u);
    EXPECT_EQ(d.stats().get("writes_drained"), 4u);
}

TEST(DramTest, BytesAccountedPerOrigin)
{
    Dram d(cfg());
    d.read(0, 0, ReqOrigin::Demand);
    d.read(kBlockSize, 0, ReqOrigin::Prefetch);
    d.read(2 * kBlockSize, 0, ReqOrigin::Metadata);
    d.write(3 * kBlockSize, 0, ReqOrigin::Writeback);
    EXPECT_EQ(d.bytes(ReqOrigin::Demand), kBlockSize);
    EXPECT_EQ(d.bytes(ReqOrigin::Prefetch), kBlockSize);
    EXPECT_EQ(d.bytes(ReqOrigin::Metadata), kBlockSize);
    EXPECT_EQ(d.bytes(ReqOrigin::Writeback), kBlockSize);
    EXPECT_EQ(d.totalBytes(), 4u * kBlockSize);
}

TEST(DramTest, ResetTimingKeepsStatistics)
{
    Dram d(cfg());
    d.read(0, 0, ReqOrigin::Demand);
    d.resetTiming();
    EXPECT_EQ(d.stats().get("reads"), 1u);
    // After the reset the bank/channel are idle again.
    const Tick t = d.read(0, 0, ReqOrigin::Demand);
    EXPECT_EQ(t, 20u * 3 + 2); // row was closed by the reset
}

// --- next-event cursor (the batched kernel's quiet-cycle skip) ------

TEST(DramTest, NextReadCompletionIsMaxWhenQueueEmpty)
{
    Dram d(cfg());
    EXPECT_EQ(d.nextReadCompletion(), kTickMax);
}

TEST(DramTest, NextReadCompletionIsEarliestInFlight)
{
    Dram d(cfg());
    const Tick t1 = d.read(0, 0, ReqOrigin::Demand);
    EXPECT_EQ(d.nextReadCompletion(), t1);
    // A second read on another bank completes later; the cursor keeps
    // pointing at the earliest outstanding completion.
    const Tick t2 = d.read(kBlockSize, 0, ReqOrigin::Demand);
    EXPECT_EQ(d.nextReadCompletion(), std::min(t1, t2));
}

TEST(DramTest, NextReadCompletionAdvancesAsReadsRetire)
{
    Dram d(cfg());
    const Tick t1 = d.read(0, 0, ReqOrigin::Demand);
    // Issuing a read long after t1 retires the first entry, so the
    // cursor must move past it rather than report a stale completion.
    const Tick t2 = d.read(kBlockSize, t1 + 1000, ReqOrigin::Demand);
    EXPECT_EQ(d.nextReadCompletion(), t2);
    EXPECT_GT(t2, t1);
}

TEST(DramTest, ResetTimingEmptiesTheCompletionQueue)
{
    Dram d(cfg());
    d.read(0, 0, ReqOrigin::Demand);
    ASSERT_NE(d.nextReadCompletion(), kTickMax);
    d.resetTiming();
    EXPECT_EQ(d.nextReadCompletion(), kTickMax);
}

/** Property: completion is never before arrival + minimum service. */
class DramLatencyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DramLatencyTest, CompletionRespectsMinimumService)
{
    Dram d(cfg());
    const Tick min_service = cfg().tCAS + cfg().tBURST;
    Tick now = 0;
    for (int i = 0; i < 200; ++i) {
        const Addr a = static_cast<Addr>((i * 7919) % 512) * kBlockSize;
        const Tick done = d.read(a, now, ReqOrigin::Demand);
        ASSERT_GE(done, now + min_service);
        now += GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(ArrivalSpacing, DramLatencyTest,
                         ::testing::Values(1, 5, 50, 500));

} // namespace
} // namespace rnr
