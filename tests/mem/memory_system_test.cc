#include <gtest/gtest.h>

#include "mem/memory_system.h"
#include "test_util.h"

namespace rnr {
namespace {

/** Machine with a single core and TLB/walk costs zeroed for clarity. */
MachineConfig
flatMachine()
{
    MachineConfig m = test::tinyMachine();
    m.tlb.walk_latency = 0;
    m.tlb.stlb_latency = 0;
    return m;
}

TEST(MemorySystemTest, ColdMissDescendsToDram)
{
    MemorySystem ms(flatMachine());
    DemandResult r = ms.demandAccess(0, 0x10000, false, 1, 0);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_TRUE(r.l2_miss);
    EXPECT_EQ(ms.dram().stats().get("reads"), 1u);
    // Completion covers at least the cache path + a DRAM row miss.
    const MachineConfig m = flatMachine();
    EXPECT_GE(r.done, m.l1d.latency + m.l2.latency + m.llc.latency +
                          m.dram.tCAS);
}

TEST(MemorySystemTest, SecondAccessHitsL1)
{
    MemorySystem ms(flatMachine());
    DemandResult r1 = ms.demandAccess(0, 0x10000, false, 1, 0);
    DemandResult r2 = ms.demandAccess(0, 0x10000, false, 1, r1.done + 1);
    EXPECT_TRUE(r2.l1_hit);
    EXPECT_EQ(r2.done, r1.done + 1 + flatMachine().l1d.latency);
}

TEST(MemorySystemTest, L1MissL2HitAfterL1Eviction)
{
    MachineConfig m = flatMachine();
    MemorySystem ms(m);
    const Tick warm = ms.demandAccess(0, 0, false, 1, 0).done;
    // Touch enough distinct blocks to push block 0 out of the L1 but
    // not out of the larger L2 (1.5x the L1 floods every L1 set while
    // leaving L2 sets under capacity).
    Tick t = warm;
    const unsigned l1_blocks =
        static_cast<unsigned>(m.l1d.size_bytes / kBlockSize);
    for (unsigned i = 1; i <= l1_blocks + l1_blocks / 2; ++i)
        t = ms.demandAccess(0, Addr(i) * kBlockSize, false, 1, t + 1).done;
    DemandResult r = ms.demandAccess(0, 0, false, 1, t + 10000);
    EXPECT_FALSE(r.l1_hit);
    EXPECT_TRUE(r.l2_hit);
}

TEST(MemorySystemTest, AccessDuringOutstandingFillSharesIt)
{
    MemorySystem ms(flatMachine());
    DemandResult r1 = ms.demandAccess(0, 0x40, false, 1, 0);
    // Another access to a different word of the same block while the
    // miss is outstanding: the line is already allocated with a future
    // fill time, so the access waits for the same fill rather than
    // issuing a second memory read.
    DemandResult r2 = ms.demandAccess(0, 0x48, false, 2, 1);
    EXPECT_LE(r2.done, r1.done + flatMachine().l1d.latency);
    EXPECT_GE(ms.l1d(0).stats().get("hits_on_inflight_fill"), 1u);
    EXPECT_EQ(ms.dram().stats().get("reads"), 1u);
}

TEST(MemorySystemTest, PrefetchFillsL2AndCountsUseful)
{
    MemorySystem ms(flatMachine());
    PrefetchIssue p = ms.prefetchIntoL2(0, 0x2000, 0);
    ASSERT_TRUE(p.issued);
    EXPECT_EQ(ms.dram().bytes(ReqOrigin::Prefetch), kBlockSize);
    // A demand access after the fill is an L2 hit on a prefetched line.
    DemandResult r = ms.demandAccess(0, 0x2000, false, 1, p.fill_time + 1);
    EXPECT_TRUE(r.l2_hit);
    EXPECT_EQ(ms.l2(0).stats().get("prefetch_useful"), 1u);
}

TEST(MemorySystemTest, RedundantPrefetchNotIssued)
{
    MemorySystem ms(flatMachine());
    ms.prefetchIntoL2(0, 0x2000, 0);
    PrefetchIssue p = ms.prefetchIntoL2(0, 0x2000, 1);
    EXPECT_FALSE(p.issued);
    EXPECT_TRUE(p.redundant);
}

TEST(MemorySystemTest, PrefetchQueueCapacityBounds)
{
    MachineConfig m = flatMachine();
    m.l2.prefetch_queue = 2;
    MemorySystem ms(m);
    EXPECT_TRUE(ms.prefetchIntoL2(0, 0x1000, 0).issued);
    EXPECT_TRUE(ms.prefetchIntoL2(0, 0x2000, 0).issued);
    PrefetchIssue p = ms.prefetchIntoL2(0, 0x3000, 0);
    EXPECT_FALSE(p.issued);
    EXPECT_TRUE(p.mshr_full);
}

TEST(MemorySystemTest, DemandMergesIntoInFlightPrefetchCountedOnce)
{
    MemorySystem ms(flatMachine());
    PrefetchIssue p = ms.prefetchIntoL2(0, 0x2000, 0);
    ASSERT_TRUE(p.issued);
    // Evict the line from the L2 insert?  No: the line is resident with
    // a future fill; a demand BEFORE the fill is a hit-on-inflight.
    DemandResult r = ms.demandAccess(0, 0x2000, false, 1, 1);
    EXPECT_TRUE(r.l2_hit);
    EXPECT_GE(r.done, p.fill_time);
}

TEST(MemorySystemTest, MetadataBypassesCaches)
{
    MemorySystem ms(flatMachine());
    ms.metadataRead(0x700000, 128, 0);
    ms.metadataWrite(0x710000, 128, 0);
    EXPECT_EQ(ms.dram().bytes(ReqOrigin::Metadata), 4u * kBlockSize);
    EXPECT_EQ(ms.l2(0).stats().get("accesses"), 0u);
    EXPECT_EQ(ms.llc().stats().get("accesses"), 0u);
}

TEST(MemorySystemTest, StoresMarkLinesDirtyAndWriteBack)
{
    MachineConfig m = flatMachine();
    MemorySystem ms(m);
    Tick t = ms.demandAccess(0, 0, true, 1, 0).done;
    // Push the dirty block all the way out of the LLC by streaming
    // twice its capacity.
    const unsigned llc_blocks =
        static_cast<unsigned>(m.llc.size_bytes / kBlockSize);
    for (unsigned i = 1; i <= 2 * llc_blocks; ++i)
        t = ms.demandAccess(0, Addr(i) * kBlockSize, false, 1, t + 1).done;
    // The dirty data eventually reaches the DRAM write path (via LLC
    // dirty marking and LLC eviction) or the write queue directly.
    EXPECT_GT(ms.dram().stats().get("writes") +
                  ms.llc().stats().get("writebacks"),
              0u);
}

TEST(MemorySystemTest, SharedLlcVisibleAcrossCores)
{
    MachineConfig m = flatMachine();
    m.cores = 2;
    MemorySystem ms(m);
    DemandResult r0 = ms.demandAccess(0, 0x8000, false, 1, 0);
    // Core 1 misses its private levels but hits the shared LLC.
    DemandResult r1 = ms.demandAccess(1, 0x8000, false, 1, r0.done + 10);
    EXPECT_TRUE(r1.l2_miss);
    EXPECT_EQ(ms.dram().stats().get("reads"), 1u);
}

TEST(MemorySystemTest, TargetFlagComesFromPrefetcher)
{
    MemorySystem ms(flatMachine());

    struct Probe : Prefetcher {
        bool saw_target = false;
        void
        onAccess(const L2AccessInfo &info) override
        {
            saw_target |= info.target_struct;
        }
        bool
        inTargetRegion(Addr a) const override
        {
            return a >= 0x5000 && a < 0x6000;
        }
        std::string name() const override { return "probe"; }
    } probe;

    ms.setPrefetcher(0, &probe);
    ms.demandAccess(0, 0x4000, false, 1, 0);
    EXPECT_FALSE(probe.saw_target);
    ms.demandAccess(0, 0x5800, false, 1, 100);
    EXPECT_TRUE(probe.saw_target);
    EXPECT_EQ(ms.l2(0).stats().get("target_accesses"), 1u);
}

} // namespace
} // namespace rnr
