#include <gtest/gtest.h>

#include "mem/mshr.h"

namespace rnr {
namespace {

TEST(MshrTest, InsertAndFind)
{
    Mshr m(4);
    m.insert(10, 100, false);
    ASSERT_NE(m.find(10), nullptr);
    EXPECT_EQ(m.find(10)->fill, 100u);
    EXPECT_EQ(m.find(11), nullptr);
}

TEST(MshrTest, PurgeDropsCompletedEntries)
{
    Mshr m(4);
    m.insert(1, 50, false);
    m.insert(2, 150, false);
    m.purge(100);
    EXPECT_EQ(m.find(1), nullptr);
    EXPECT_NE(m.find(2), nullptr);
    EXPECT_EQ(m.inFlight(), 1u);
}

TEST(MshrTest, FullAndEarliestFill)
{
    Mshr m(2);
    m.insert(1, 300, false);
    EXPECT_FALSE(m.full());
    m.insert(2, 200, true);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.earliestFill(), 200u);
}

TEST(MshrTest, PrefetchFlagStored)
{
    Mshr m(2);
    m.insert(5, 100, true);
    EXPECT_TRUE(m.find(5)->prefetch);
}

TEST(MshrTest, ClearEmpties)
{
    Mshr m(2);
    m.insert(1, 10, false);
    m.clear();
    EXPECT_EQ(m.inFlight(), 0u);
    EXPECT_EQ(m.find(1), nullptr);
}

// --- next-event cursor (the batched kernel's quiet-cycle skip) ------

TEST(MshrTest, NextFillIsMaxOnEmptyFile)
{
    Mshr m(4);
    EXPECT_EQ(m.nextFill(), kTickMax);
}

TEST(MshrTest, NextFillTracksMinimumAcrossInserts)
{
    Mshr m(4);
    m.insert(1, 300, false);
    EXPECT_EQ(m.nextFill(), 300u);
    m.insert(2, 100, true);
    EXPECT_EQ(m.nextFill(), 100u);
    m.insert(3, 200, false);
    EXPECT_EQ(m.nextFill(), 100u); // later fills don't lower the min
}

TEST(MshrTest, PurgeBeforeCursorIsANoOp)
{
    Mshr m(4);
    m.insert(1, 100, false);
    m.insert(2, 200, false);
    // Strictly before the earliest fill: nothing can have completed,
    // so the purge must not drop entries or move the cursor.
    m.purge(99);
    EXPECT_EQ(m.inFlight(), 2u);
    EXPECT_EQ(m.nextFill(), 100u);
}

TEST(MshrTest, PurgeAtExactBoundaryDropsAndRecomputes)
{
    Mshr m(4);
    m.insert(1, 100, false);
    m.insert(2, 250, false);
    m.insert(3, 250, true);
    // now == fill counts as completed (fill <= now drops).
    m.purge(100);
    EXPECT_EQ(m.find(1), nullptr);
    EXPECT_EQ(m.inFlight(), 2u);
    EXPECT_EQ(m.nextFill(), 250u); // recomputed to the surviving min
    // Draining the rest resets the cursor to "no event".
    m.purge(250);
    EXPECT_EQ(m.inFlight(), 0u);
    EXPECT_EQ(m.nextFill(), kTickMax);
}

TEST(MshrTest, DrainThenRefillRestartsCursor)
{
    // A fully drained file (the MSHR-drain-at-block-boundary case) must
    // accept new entries with a fresh cursor, not a stale one.
    Mshr m(2);
    m.insert(1, 50, false);
    m.purge(1000);
    EXPECT_EQ(m.nextFill(), kTickMax);
    m.insert(2, 2000, false);
    EXPECT_EQ(m.nextFill(), 2000u);
    m.purge(1500); // before the new fill: still a no-op
    EXPECT_EQ(m.inFlight(), 1u);
}

TEST(MshrTest, ClearResetsCursor)
{
    Mshr m(2);
    m.insert(1, 10, false);
    m.clear();
    EXPECT_EQ(m.nextFill(), kTickMax);
}

TEST(MshrTest, EarliestFillAgreesWithCursorWhenNonEmpty)
{
    Mshr m(4);
    m.insert(7, 400, false);
    m.insert(8, 150, false);
    EXPECT_EQ(m.earliestFill(), m.nextFill());
    EXPECT_EQ(m.earliestFill(), 150u);
}

} // namespace
} // namespace rnr
