#include <gtest/gtest.h>

#include "mem/mshr.h"

namespace rnr {
namespace {

TEST(MshrTest, InsertAndFind)
{
    Mshr m(4);
    m.insert(10, 100, false);
    ASSERT_NE(m.find(10), nullptr);
    EXPECT_EQ(m.find(10)->fill, 100u);
    EXPECT_EQ(m.find(11), nullptr);
}

TEST(MshrTest, PurgeDropsCompletedEntries)
{
    Mshr m(4);
    m.insert(1, 50, false);
    m.insert(2, 150, false);
    m.purge(100);
    EXPECT_EQ(m.find(1), nullptr);
    EXPECT_NE(m.find(2), nullptr);
    EXPECT_EQ(m.inFlight(), 1u);
}

TEST(MshrTest, FullAndEarliestFill)
{
    Mshr m(2);
    m.insert(1, 300, false);
    EXPECT_FALSE(m.full());
    m.insert(2, 200, true);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.earliestFill(), 200u);
}

TEST(MshrTest, PrefetchFlagStored)
{
    Mshr m(2);
    m.insert(5, 100, true);
    EXPECT_TRUE(m.find(5)->prefetch);
}

TEST(MshrTest, ClearEmpties)
{
    Mshr m(2);
    m.insert(1, 10, false);
    m.clear();
    EXPECT_EQ(m.inFlight(), 0u);
    EXPECT_EQ(m.find(1), nullptr);
}

} // namespace
} // namespace rnr
