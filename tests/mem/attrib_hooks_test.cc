/**
 * @file
 * Integration tests for the attribution hooks inside the memory
 * hierarchy (mem/cache.h, mem/memory_system.cc): hook placement must
 * mirror the hardware counters exactly, the pollution filter must only
 * learn demand-owned victims, and an attached collector must never
 * change what the caches do (observation only).
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/memory_system.h"
#include "sim/attrib.h"
#include "test_util.h"

namespace rnr {
namespace {

CacheConfig
directMapped(std::uint64_t bytes = 1024)
{
    CacheConfig c;
    c.name = "T";
    c.size_bytes = bytes; // 1-way: insert in a full set always evicts
    c.ways = 1;
    c.mshrs = 4;
    c.latency = 4;
    return c;
}

TEST(AttribCacheHooks, UsefulChargedOnceToTheFillingSite)
{
    AttribCollector at;
    Cache c(directMapped());
    c.setAttrib(&at, /*core=*/0);
    c.insert(9, 0, /*prefetched=*/true, false, /*site=*/0x400u);
    c.access(9, 10);
    c.access(9, 20); // second hit: already referenced, no charge

    const AttribBlob b = at.harvest();
    EXPECT_EQ(b.totals.useful, c.stats().get("prefetch_useful"));
    ASSERT_EQ(b.sites.size(), 1u);
    EXPECT_EQ(b.sites[0].site, 0x400u);
    EXPECT_EQ(b.sites[0].stats.useful, 1u);
}

TEST(AttribCacheHooks, UnusedPrefetchVictimChargedNotRemembered)
{
    AttribCollector at;
    Cache c(directMapped());
    c.setAttrib(&at, 0);
    const unsigned sets = c.config().sets();
    c.insert(3, 0, /*prefetched=*/true, false, /*site=*/0x100u);
    // A second prefetch displaces the never-referenced first one.
    c.insert(3 + sets, 5, /*prefetched=*/true, false, /*site=*/0x200u);

    AttribBlob b = at.harvest();
    EXPECT_EQ(b.totals.evicted_unused, 1u);
    EXPECT_EQ(b.totals.evicted_unused,
              c.stats().get("prefetch_evicted_unused"));
    // The waste is charged to the *victim's* site, not the evictor's.
    ASSERT_EQ(b.sites.size(), 1u);
    EXPECT_EQ(b.sites[0].site, 0x100u);
    EXPECT_EQ(b.sites[0].stats.evicted_unused, 1u);

    // Evicting an unused prefetch is waste, not pollution: the victim
    // must not enter the filter, so re-missing on it charges nothing.
    EXPECT_EQ(c.access(3, 50), nullptr);
    b = at.harvest();
    EXPECT_EQ(b.totals.pollution, 0u);
    EXPECT_EQ(b.pollution_filter_inserts, 0u);
}

TEST(AttribCacheHooks, DemandVictimReMissChargesPollution)
{
    AttribCollector at;
    Cache c(directMapped());
    c.setAttrib(&at, 0);
    const unsigned sets = c.config().sets();
    c.insert(8, 0, /*prefetched=*/false, false); // demand-owned line
    c.insert(8 + sets, 5, /*prefetched=*/true, false, /*site=*/0x7abcu);

    EXPECT_EQ(c.access(8, 50), nullptr); // the program still needed it
    const AttribBlob b = at.harvest();
    EXPECT_EQ(b.totals.pollution, 1u);
    EXPECT_EQ(b.pollution_filter_inserts, 1u);
    EXPECT_EQ(b.pollution_filter_hits, 1u);
    ASSERT_GE(b.sites.size(), 1u);
    EXPECT_EQ(b.sites[0].site, 0x7abcu);
    EXPECT_EQ(b.sites[0].stats.pollution, 1u);
}

TEST(AttribCacheHooks, ReferencedPrefetchVictimAlsoCountsAsDemandOwned)
{
    AttribCollector at;
    Cache c(directMapped());
    c.setAttrib(&at, 0);
    const unsigned sets = c.config().sets();
    c.insert(2, 0, /*prefetched=*/true, false, /*site=*/0x111u);
    c.access(2, 10); // referenced: the demand stream owns it now
    c.insert(2 + sets, 20, /*prefetched=*/true, false, /*site=*/0x222u);

    EXPECT_EQ(c.access(2, 50), nullptr);
    const AttribBlob b = at.harvest();
    EXPECT_EQ(b.totals.pollution, 1u);
    // Pollution is charged to the evicting site, not the victim's.
    const auto it = std::find_if(
        b.sites.begin(), b.sites.end(),
        [](const AttribBlob::SiteRow &r) { return r.site == 0x222u; });
    ASSERT_NE(it, b.sites.end());
    EXPECT_EQ(it->stats.pollution, 1u);
}

TEST(AttribCacheHooks, AttachedCollectorDoesNotPerturbCacheCounters)
{
    // Identical access sequences with and without a collector must
    // leave every hardware counter identical (observation only).
    const auto drive = [](Cache &c) {
        const unsigned sets = c.config().sets();
        for (Addr a = 0; a < 4 * sets; ++a) {
            c.access(a % (3 * sets), a);
            c.insert(a % (3 * sets), a, (a % 3) == 0, (a % 5) == 0,
                     (a % 3) == 0 ? 0x40u : 0u);
        }
    };
    Cache plain(directMapped());
    Cache observed(directMapped());
    AttribCollector at;
    observed.setAttrib(&at, 0);
    drive(plain);
    drive(observed);
    for (const char *name :
         {"accesses", "hits", "misses", "evictions", "writebacks",
          "prefetch_useful", "prefetch_evicted_unused", "fills_demand",
          "fills_prefetch"})
        EXPECT_EQ(plain.stats().get(name), observed.stats().get(name))
            << name;
}

TEST(AttribMemorySystem, TotalsMatchTheL2CountersExactly)
{
    MemorySystem ms(test::tinyMachine());
    AttribCollector at;
    ms.attachAttrib(&at);

    // Overflow the 8 KiB L2 with prefetches (unused evictions), then
    // demand-touch a few resident ones (useful) and re-miss on what
    // the tail of the prefetch burst displaced (pollution candidates).
    Tick t = 0;
    for (unsigned i = 0; i < 512; ++i)
        ms.prefetchIntoL2(0, Addr(i) * kBlockSize, ++t,
                          /*site=*/0x1000u + (i % 4));
    for (unsigned i = 500; i < 512; ++i)
        t = ms.demandAccess(0, Addr(i) * kBlockSize, false, 1, t + 1).done;
    for (unsigned i = 0; i < 32; ++i)
        t = ms.demandAccess(0, Addr(i) * kBlockSize, false, 1, t + 1).done;

    const AttribBlob b = at.harvest();
    const StatGroup &l2 = ms.l2(0).stats();
    EXPECT_EQ(b.totals.issued, l2.get("prefetches_issued"));
    EXPECT_EQ(b.totals.useful, l2.get("prefetch_useful"));
    EXPECT_EQ(b.totals.late_merged,
              l2.get("demand_merged_into_prefetch"));
    EXPECT_EQ(b.totals.evicted_unused,
              l2.get("prefetch_evicted_unused"));
    EXPECT_GT(b.totals.issued, 0u);
    EXPECT_GT(b.totals.evicted_unused, 0u);
    EXPECT_EQ(b.pollution_filter_hits, b.totals.pollution);

    // Every event landed on one of the four issuing sites (or site 0
    // for demand-side events) — cross-check the table re-sums.
    std::uint64_t issued = b.site_other.issued;
    for (const auto &r : b.sites)
        issued += r.stats.issued;
    EXPECT_EQ(issued, b.totals.issued);
}

} // namespace
} // namespace rnr
