/**
 * @file
 * Shared helpers for the unit and integration tests.
 */
#ifndef RNR_TESTS_TEST_UTIL_H
#define RNR_TESTS_TEST_UTIL_H

#include <memory>
#include <vector>

#include "cpu/system.h"
#include "mem/memory_system.h"
#include "prefetch/factory.h"
#include "sim/config.h"
#include "trace/trace_buffer.h"
#include "workloads/workload.h"

namespace rnr::test {

/** A small machine that keeps unit tests fast and states observable. */
inline MachineConfig
tinyMachine()
{
    MachineConfig m = MachineConfig::scaledDefault();
    m.cores = 1;
    m.l1d.size_bytes = 4 * 1024;
    m.l2.size_bytes = 8 * 1024;
    m.llc.size_bytes = 64 * 1024;
    return m;
}

/** Runs a workload for @p iterations on @p sys; returns per-iteration
 *  results. */
inline std::vector<IterationResult>
runWorkload(System &sys, Workload &wl, unsigned iterations)
{
    std::vector<IterationResult> out;
    std::vector<TraceBuffer> bufs(wl.cores());
    for (unsigned it = 0; it < iterations; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl.emitIteration(it, it + 1 == iterations, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        out.push_back(sys.run(ptrs));
    }
    return out;
}

/** Builds per-core prefetchers of @p kind and attaches them to @p sys.
 *  The returned vector owns them. */
inline std::vector<std::unique_ptr<Prefetcher>>
attachPrefetchers(System &sys, PrefetcherKind kind,
                  const RnrPrefetcher::Options &opts = {}, Workload *wl = nullptr)
{
    std::vector<std::unique_ptr<Prefetcher>> out;
    for (unsigned c = 0; c < sys.coreCount(); ++c) {
        out.push_back(createPrefetcher(kind, opts));
        if (wl) {
            if (auto *d =
                    dynamic_cast<DropletPrefetcher *>(out.back().get()))
                d->setHint(wl->dropletHint(c));
        }
        sys.mem().setPrefetcher(c, out.back().get());
    }
    return out;
}

} // namespace rnr::test

#endif // RNR_TESTS_TEST_UTIL_H
