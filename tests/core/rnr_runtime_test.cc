#include <gtest/gtest.h>

#include "core/rnr_runtime.h"

namespace rnr {
namespace {

struct RuntimeFixture : ::testing::Test {
    RuntimeFixture() : tracer(&buf), rt(&tracer, &space, "t0") {}

    const TraceRecord &
    rec(std::size_t i) const
    {
        return buf.records()[i];
    }

    TraceBuffer buf;
    AddressSpace space;
    Tracer tracer;
    RnrRuntime rt;
};

TEST_F(RuntimeFixture, InitAllocatesMetadataAndEmitsControl)
{
    rt.init(1 << 20);
    ASSERT_EQ(buf.controls(), 1u);
    EXPECT_EQ(rec(0).ctrl, RnrOp::Init);
    EXPECT_EQ(rec(0).addr, rt.seqTableBase());
    EXPECT_EQ(rec(0).aux, rt.divTableBase());
    EXPECT_NE(space.find("rnr_seq_t0"), nullptr);
    EXPECT_NE(space.find("rnr_div_t0"), nullptr);
    // Sequence table sized generously for the declared structure.
    EXPECT_GE(space.find("rnr_seq_t0")->bytes, std::uint64_t{1} << 20);
}

TEST_F(RuntimeFixture, TableICallsEmitMatchingOps)
{
    rt.init(4096);
    rt.addrBaseSet(0x1000, 512);
    rt.addrEnable(0x1000);
    rt.windowSizeSet(64);
    rt.start();
    rt.replay();
    rt.pause();
    rt.resume();
    rt.addrDisable(0x1000);
    rt.endState();
    rt.end();
    const std::vector<RnrOp> expect = {
        RnrOp::Init,     RnrOp::AddrBaseSet, RnrOp::AddrEnable,
        RnrOp::WindowSizeSet, RnrOp::Start,  RnrOp::Replay,
        RnrOp::Pause,    RnrOp::Resume,      RnrOp::AddrDisable,
        RnrOp::EndState, RnrOp::Free,
    };
    ASSERT_EQ(buf.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(rec(i).ctrl, expect[i]) << i;
    // Payload spot checks.
    EXPECT_EQ(rec(1).addr, 0x1000u);
    EXPECT_EQ(rec(1).aux, 512u);
    EXPECT_EQ(rec(3).addr, 64u);
}

TEST_F(RuntimeFixture, DisabledRuntimeIsInert)
{
    RnrRuntime off(&tracer, &space, "off", /*enabled=*/false);
    off.init(4096);
    off.addrBaseSet(1, 2);
    off.start();
    off.replay();
    off.end();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(space.find("rnr_seq_off"), nullptr);
}

TEST_F(RuntimeFixture, RetargetMovesSubsequentRecords)
{
    TraceBuffer other;
    rt.init(4096);
    rt.retarget(&other);
    rt.start();
    EXPECT_EQ(buf.controls(), 1u);
    EXPECT_EQ(other.controls(), 1u);
}

} // namespace
} // namespace rnr
