#include <gtest/gtest.h>

#include "core/rnr_state.h"

namespace rnr {
namespace {

TEST(RnrStateTest, BoundaryContainsRespectsEnableAndRange)
{
    BoundaryEntry b;
    b.base = 0x1000;
    b.size = 0x100;
    EXPECT_FALSE(b.contains(0x1000)); // invalid
    b.valid = true;
    EXPECT_FALSE(b.contains(0x1000)); // disabled
    b.enabled = true;
    EXPECT_TRUE(b.contains(0x1000));
    EXPECT_TRUE(b.contains(0x10FF));
    EXPECT_FALSE(b.contains(0x1100));
    EXPECT_FALSE(b.contains(0xFFF));
}

TEST(RnrStateTest, SeqEntryRoundTrips)
{
    const SeqEntry e = SeqEntry::make(1, 12345);
    EXPECT_EQ(e.slot(), 1u);
    EXPECT_EQ(e.blockOffset(), 12345u);
}

TEST(RnrStateTest, SeqEntryIsTwoBytes)
{
    // Fig 4 annotates the staging buffer as 128 x 2 B entries.
    EXPECT_EQ(sizeof(SeqEntry), 2u);
    EXPECT_EQ(kSeqEntryBytes, 2u);
    EXPECT_EQ(kMetaBufferBytes, 128u);
}

class SeqEntrySweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>>
{
};

TEST_P(SeqEntrySweep, PackUnpackIdentity)
{
    const auto [slot, offset] = GetParam();
    const SeqEntry e = SeqEntry::make(slot, offset);
    EXPECT_EQ(e.slot(), slot);
    EXPECT_EQ(e.blockOffset(), offset);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, SeqEntrySweep,
    ::testing::Combine(::testing::Values(0u, 1u),
                       ::testing::Values(std::uint64_t{0}, 1, 255, 4096,
                                         SeqEntry::kMaxOffset)));

TEST(RnrStateTest, DefaultArchStateIsIdle)
{
    RnrArchState s;
    EXPECT_EQ(s.state, RnrState::Idle);
    for (const auto &b : s.boundaries) {
        EXPECT_FALSE(b.valid);
        EXPECT_FALSE(b.enabled);
    }
}

} // namespace
} // namespace rnr
