#include <gtest/gtest.h>

#include "core/rnr_prefetcher.h"
#include "test_util.h"

namespace rnr {
namespace {

/** Drives one RnR prefetcher on a single-core memory system. */
struct RnrFixture : ::testing::Test {
    RnrFixture() : ms(test::tinyMachine())
    {
        RnrPrefetcher::Options opts;
        opts.window_size = 4;
        pf = std::make_unique<RnrPrefetcher>(opts);
        ms.setPrefetcher(0, pf.get());
    }

    void
    ctl(RnrOp op, Addr p0 = 0, std::uint64_t p1 = 0)
    {
        pf->onControl(TraceRecord::control(op, p0, p1), t_);
    }

    /** Programs boundaries for [base, base+size) and starts recording. */
    void
    setupAndRecord(Addr base, std::uint64_t size)
    {
        ctl(RnrOp::Init, kSeqBase, kDivBase);
        ctl(RnrOp::AddrBaseSet, base, size);
        ctl(RnrOp::AddrEnable, base);
        ctl(RnrOp::Start);
    }

    /** One demand read; advances time enough to stay miss-ordered. */
    void
    read(Addr a)
    {
        ms.demandAccess(0, a, false, 1, t_);
        t_ += 800;
    }

    static constexpr Addr kSeqBase = 0x70000000;
    static constexpr Addr kDivBase = 0x71000000;
    static constexpr Addr kTarget = 0x100000;

    MemorySystem ms;
    std::unique_ptr<RnrPrefetcher> pf;
    Tick t_ = 0;
};

TEST_F(RnrFixture, InitProgramsArchitecturalState)
{
    ctl(RnrOp::Init, kSeqBase, kDivBase);
    EXPECT_EQ(pf->arch().seq_table_base, kSeqBase);
    EXPECT_EQ(pf->arch().div_table_base, kDivBase);
    EXPECT_EQ(pf->arch().window_size, 4u);
    EXPECT_EQ(pf->arch().state, RnrState::Idle);
}

TEST_F(RnrFixture, RecordCapturesMissSequenceAsOffsets)
{
    setupAndRecord(kTarget, 1 << 16);
    read(kTarget + 0 * kBlockSize);
    read(kTarget + 7 * kBlockSize);
    read(kTarget + 3 * kBlockSize);
    ASSERT_EQ(pf->sequence().size(), 3u);
    EXPECT_EQ(pf->sequence()[0].blockOffset(), 0u);
    EXPECT_EQ(pf->sequence()[1].blockOffset(), 7u);
    EXPECT_EQ(pf->sequence()[2].blockOffset(), 3u);
    EXPECT_EQ(pf->internals().cur_struct_read, 3u);
}

TEST_F(RnrFixture, HitsAreNotRecorded)
{
    setupAndRecord(kTarget, 1 << 16);
    read(kTarget);
    read(kTarget); // L1 hit: not even an L2 access
    EXPECT_EQ(pf->sequence().size(), 1u);
    EXPECT_EQ(pf->internals().cur_struct_read, 1u); // reads counted at L2
}

TEST_F(RnrFixture, AccessesOutsideRangeIgnored)
{
    setupAndRecord(kTarget, kBlockSize * 8);
    read(0x900000);
    read(kTarget + kBlockSize * 100); // beyond the declared size
    EXPECT_EQ(pf->sequence().size(), 0u);
}

TEST_F(RnrFixture, DivisionTableRecordsReadsPerWindow)
{
    setupAndRecord(kTarget, 1 << 16);
    // 8 misses with window_size 4 -> two division entries.
    for (int i = 0; i < 8; ++i)
        read(kTarget + Addr(i) * kBlockSize);
    ASSERT_EQ(pf->division().size(), 2u);
    EXPECT_EQ(pf->division()[0], 4u);
    EXPECT_EQ(pf->division()[1], 8u);
}

TEST_F(RnrFixture, MetadataWritebacksReachDram)
{
    setupAndRecord(kTarget, 1 << 16);
    // 64 entries x 2 B = one full 128 B staging buffer.
    for (int i = 0; i < 64; ++i)
        read(kTarget + Addr(i) * kBlockSize);
    EXPECT_GT(ms.dram().bytes(ReqOrigin::Metadata), 0u);
}

TEST_F(RnrFixture, ReplayPrefetchesRecordedSequence)
{
    setupAndRecord(kTarget, 1 << 16);
    const std::vector<unsigned> offsets = {5, 1, 9, 2};
    for (unsigned o : offsets)
        read(kTarget + Addr(o) * kBlockSize);
    // Drop the cache contents so prefetches are observable.
    ms.l2(0).reset();
    ms.l1d(0).reset();
    ctl(RnrOp::Replay);
    EXPECT_EQ(pf->arch().state, RnrState::Replay);
    for (unsigned o : offsets) {
        EXPECT_NE(ms.l2(0).peek(blockNumber(kTarget) + o), nullptr)
            << o;
    }
    EXPECT_GT(pf->stats().get("issued"), 0u);
}

TEST_F(RnrFixture, ReplayResolvesAgainstSwappedBase)
{
    // Algorithm 1's p_curr/p_next exchange: record against slot 0,
    // replay with slot 1 enabled instead.
    const Addr other = 0x200000;
    ctl(RnrOp::Init, kSeqBase, kDivBase);
    ctl(RnrOp::AddrBaseSet, kTarget, 1 << 16);
    ctl(RnrOp::AddrBaseSet, other, 1 << 16);
    ctl(RnrOp::AddrEnable, kTarget);
    ctl(RnrOp::Start);
    read(kTarget + 6 * kBlockSize);
    ctl(RnrOp::AddrDisable, kTarget);
    ctl(RnrOp::AddrEnable, other);
    ms.l2(0).reset();
    ms.l1d(0).reset();
    ctl(RnrOp::Replay);
    EXPECT_NE(ms.l2(0).peek(blockNumber(other) + 6), nullptr);
}

TEST_F(RnrFixture, PauseSuspendsAndResumeRestores)
{
    setupAndRecord(kTarget, 1 << 16);
    read(kTarget);
    ctl(RnrOp::Pause);
    EXPECT_EQ(pf->arch().state, RnrState::Paused);
    read(kTarget + 5 * kBlockSize); // not recorded while paused
    EXPECT_EQ(pf->sequence().size(), 1u);
    EXPECT_FALSE(pf->inTargetRegion(kTarget)); // boundary checks off
    ctl(RnrOp::Resume);
    EXPECT_EQ(pf->arch().state, RnrState::Record);
    read(kTarget + 9 * kBlockSize);
    EXPECT_EQ(pf->sequence().size(), 2u);
}

TEST_F(RnrFixture, EndStateDisablesAndFreeReleasesStorage)
{
    setupAndRecord(kTarget, 1 << 16);
    for (int i = 0; i < 5; ++i)
        read(kTarget + Addr(i) * kBlockSize);
    ctl(RnrOp::EndState);
    EXPECT_EQ(pf->arch().state, RnrState::Idle);
    const std::uint64_t bytes = pf->seqTableBytes();
    EXPECT_EQ(bytes, 5u * kSeqEntryBytes);
    ctl(RnrOp::Free);
    EXPECT_EQ(pf->sequence().size(), 0u);
    // Peak storage remains reported after the free (Fig 13's metric).
    EXPECT_EQ(pf->stats().get("seq_table_bytes"), bytes);
}

TEST_F(RnrFixture, FinishRecordingClosesPartialWindow)
{
    setupAndRecord(kTarget, 1 << 16);
    for (int i = 0; i < 6; ++i) // 1.5 windows
        read(kTarget + Addr(i) * kBlockSize);
    ctl(RnrOp::Replay);
    ASSERT_EQ(pf->division().size(), 2u);
    EXPECT_EQ(pf->division()[1], 6u);
}

TEST_F(RnrFixture, WritesAreNeitherCountedNorRecorded)
{
    setupAndRecord(kTarget, 1 << 16);
    ms.demandAccess(0, kTarget, true, 1, t_);
    EXPECT_EQ(pf->sequence().size(), 0u);
    EXPECT_EQ(pf->internals().cur_struct_read, 0u);
}

TEST_F(RnrFixture, ContextSwitchStateNearPaperFigure)
{
    // Section IV-C: 86.5 B of save/restore state.
    EXPECT_NEAR(static_cast<double>(RnrPrefetcher::contextSwitchBytes()),
                86.5, 2.0);
}

TEST_F(RnrFixture, OffsetBeyondEntryFormatIsSkippedNotCorrupted)
{
    // Declare a structure larger than the 2-byte entry format covers.
    const std::uint64_t huge = (SeqEntry::kMaxOffset + 1000) * kBlockSize;
    setupAndRecord(kTarget, huge);
    read(kTarget + (SeqEntry::kMaxOffset + 5) * kBlockSize);
    EXPECT_EQ(pf->sequence().size(), 0u);
    EXPECT_EQ(pf->stats().get("offset_overflow_skipped"), 1u);
    read(kTarget + 3 * kBlockSize); // in-range misses still record
    EXPECT_EQ(pf->sequence().size(), 1u);
}

TEST_F(RnrFixture, EnableOnUnknownBaseIsNoOp)
{
    ctl(RnrOp::Init, kSeqBase, kDivBase);
    ctl(RnrOp::AddrEnable, 0xDEAD000);
    ctl(RnrOp::Start);
    read(0xDEAD000);
    EXPECT_EQ(pf->sequence().size(), 0u);
}

TEST_F(RnrFixture, ReplayWithEmptySequenceIsInert)
{
    setupAndRecord(kTarget, 1 << 16);
    ctl(RnrOp::Replay); // nothing was recorded
    read(kTarget);
    EXPECT_EQ(pf->stats().get("issued"), 0u);
}

TEST_F(RnrFixture, SecondRecordingReplacesTheFirst)
{
    setupAndRecord(kTarget, 1 << 16);
    read(kTarget + 1 * kBlockSize);
    ctl(RnrOp::Start); // re-record from scratch
    read(kTarget + 8 * kBlockSize);
    ASSERT_EQ(pf->sequence().size(), 1u);
    EXPECT_EQ(pf->sequence()[0].blockOffset(), 8u);
}

TEST_F(RnrFixture, TimelinessClassificationCountsOnTime)
{
    setupAndRecord(kTarget, 1 << 16);
    const std::vector<unsigned> offsets = {1, 2, 3, 4, 5, 6, 7, 8};
    for (unsigned o : offsets)
        read(kTarget + Addr(o) * kBlockSize);
    ms.l2(0).reset();
    ms.l1d(0).reset();
    ctl(RnrOp::Replay);
    t_ += 100000; // everything prefetched in the burst has landed
    for (unsigned o : offsets)
        read(kTarget + Addr(o) * kBlockSize);
    EXPECT_GT(pf->stats().get("pf_ontime"), 0u);
    EXPECT_EQ(pf->stats().get("pf_early"), 0u);
}

} // namespace
} // namespace rnr
