#include <gtest/gtest.h>

#include "core/rnr_hw_model.h"
#include "core/rnr_prefetcher.h"

namespace rnr {
namespace {

TEST(HwModelTest, TotalStateUnderOneKilobyte)
{
    const RnrHwCost c = computeRnrHwCost();
    // Section VII-B: "less than 1 KB for each core".
    EXPECT_LT(c.total_bytes, 1024u);
    EXPECT_GT(c.total_bytes, 256u); // two 128 B buffers alone
}

TEST(HwModelTest, ContextSwitchBytesNearPaper)
{
    const RnrHwCost c = computeRnrHwCost();
    EXPECT_NEAR(static_cast<double>(c.context_switch_bytes), 86.5, 2.0);
    EXPECT_EQ(c.context_switch_bytes,
              RnrPrefetcher::contextSwitchBytes());
}

TEST(HwModelTest, BitTotalsMatchRegisterList)
{
    const RnrHwCost c = computeRnrHwCost();
    std::uint64_t arch = 0, internal = 0;
    for (const auto &r : c.registers)
        (r.architectural ? arch : internal) += r.bits;
    EXPECT_EQ(arch, c.arch_state_bits);
    EXPECT_EQ(internal, c.internal_state_bits);
}

TEST(HwModelTest, AreaIsNegligibleFractionOfChip)
{
    const RnrHwCost c = computeRnrHwCost();
    // Section VII-B: < 0.01% of the 46.19 mm^2 die.
    EXPECT_LT(c.chip_fraction, 0.0001);
    EXPECT_GT(c.area_mm2_22nm, 0.0);
}

TEST(HwModelTest, DescribeListsEveryRegister)
{
    const RnrHwCost c = computeRnrHwCost();
    const std::string d = c.describe();
    for (const auto &r : c.registers)
        EXPECT_NE(d.find(r.name), std::string::npos) << r.name;
}

} // namespace
} // namespace rnr
