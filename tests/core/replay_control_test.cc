#include <gtest/gtest.h>

#include "core/replay_control.h"

namespace rnr {
namespace {

/**
 * The paper's Fig 5 example: window size 3; window 1 spans 6 reads with
 * 3 misses (50% miss ratio), window 2 spans 9 reads with 3 misses
 * (33.3%).  Division table stores cumulative reads at window ends.
 */
const std::vector<std::uint64_t> kFig5Division = {6, 15};

TEST(ReplayControlTest, NoControlIssuesFixedBursts)
{
    ReplayController rc(ReplayControlMode::None, 3, /*degree=*/4);
    rc.beginReplay(&kFig5Division, 6);
    EXPECT_EQ(rc.initialBurst(), 6u); // min(2*degree, total)
    // Every read requests another burst regardless of progress.
    EXPECT_EQ(rc.onStructRead(1, 6), 0u); // already all issued
    rc.beginReplay(&kFig5Division, 100);
    EXPECT_EQ(rc.onStructRead(1, 8), 4u);
    EXPECT_EQ(rc.onStructRead(2, 12), 4u);
}

TEST(ReplayControlTest, WindowControlMatchesFig5Timeline)
{
    ReplayController rc(ReplayControlMode::Window, 3);
    rc.beginReplay(&kFig5Division, 6);
    // At replay start windows 0 and 1 (all 6 entries) may be resident.
    EXPECT_EQ(rc.initialBurst(), 6u);
    // Reads 1..5: still inside window 0 (div[0] = 6): budget unchanged.
    for (std::uint64_t read = 1; read <= 5; ++read)
        EXPECT_EQ(rc.onStructRead(read, 6), 0u) << read;
    EXPECT_EQ(rc.currentWindow(), 0u);
    // Read 6 completes window 0.
    rc.onStructRead(6, 6);
    EXPECT_EQ(rc.currentWindow(), 1u);
}

TEST(ReplayControlTest, WindowBudgetGrowsByWholeWindows)
{
    const std::vector<std::uint64_t> div = {10, 20, 30, 40};
    ReplayController rc(ReplayControlMode::Window, 4);
    rc.beginReplay(&div, 16);
    EXPECT_EQ(rc.initialBurst(), 8u); // windows 0 and 1
    // Crossing div[0]=10 unlocks window 2's four entries.
    EXPECT_EQ(rc.onStructRead(10, 8), 4u);
    // Crossing div[1]=20 unlocks window 3.
    EXPECT_EQ(rc.onStructRead(20, 12), 4u);
}

TEST(ReplayControlTest, PaceComputedFromDivisionTable)
{
    ReplayController rc(ReplayControlMode::WindowPace, 3);
    rc.beginReplay(&kFig5Division, 6);
    // Window 0: 6 reads / 3 entries -> one prefetch per 2 reads.
    EXPECT_EQ(rc.pace(), 2u);
    // Advance into window 1: 9 reads / 3 entries -> pace 3.
    rc.onStructRead(6, 6);
    EXPECT_EQ(rc.pace(), 3u);
}

TEST(ReplayControlTest, PacedIssueTracksConsumption)
{
    const std::vector<std::uint64_t> div = {100, 200};
    ReplayController rc(ReplayControlMode::WindowPace, 50);
    rc.beginReplay(&div, 100);
    std::uint64_t issued = rc.initialBurst();
    EXPECT_LE(issued, ReplayController::kPaceLookahead);
    // Walk the reads; issuance must stay within lookahead of the
    // interpolated consumption and never exceed the window budget.
    for (std::uint64_t read = 1; read <= 200; ++read) {
        issued += rc.onStructRead(read, issued);
        const std::uint64_t consumed_upper = read; // <= 1 entry per read
        EXPECT_LE(issued,
                  consumed_upper + ReplayController::kPaceLookahead);
    }
    EXPECT_EQ(issued, 100u); // everything eventually issues
}

TEST(ReplayControlTest, BudgetNeverExceedsTotalEntries)
{
    const std::vector<std::uint64_t> div = {4, 8};
    ReplayController rc(ReplayControlMode::Window, 4);
    rc.beginReplay(&div, 5); // partial tail window
    EXPECT_EQ(rc.initialBurst(), 5u);
    EXPECT_EQ(rc.onStructRead(100, 5), 0u);
}

TEST(ReplayControlTest, EmptyDivisionTableIsSafe)
{
    const std::vector<std::uint64_t> empty;
    ReplayController rc(ReplayControlMode::WindowPace, 8);
    rc.beginReplay(&empty, 0);
    EXPECT_EQ(rc.initialBurst(), 0u);
    EXPECT_EQ(rc.onStructRead(1, 0), 0u);
}

TEST(ReplayControlTest, WindowSizeCanBeAdoptedLate)
{
    ReplayController rc(ReplayControlMode::Window, 999);
    rc.setWindowSize(3);
    rc.beginReplay(&kFig5Division, 6);
    EXPECT_EQ(rc.initialBurst(), 6u);
}

/** Property: cumulative issuance is monotonic and bounded. */
class ReplayModeTest
    : public ::testing::TestWithParam<ReplayControlMode>
{
};

TEST_P(ReplayModeTest, IssuanceMonotonicAndBounded)
{
    std::vector<std::uint64_t> div;
    for (int w = 1; w <= 20; ++w)
        div.push_back(w * 30);
    ReplayController rc(GetParam(), 10);
    rc.beginReplay(&div, 200);
    std::uint64_t issued = std::min<std::uint64_t>(rc.initialBurst(), 200);
    for (std::uint64_t read = 1; read <= 600; ++read) {
        const std::uint64_t more = rc.onStructRead(read, issued);
        issued += more;
        ASSERT_LE(issued, 200u);
    }
    if (GetParam() != ReplayControlMode::None) {
        EXPECT_EQ(issued, 200u);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplayModeTest,
                         ::testing::Values(ReplayControlMode::None,
                                           ReplayControlMode::Window,
                                           ReplayControlMode::WindowPace));

} // namespace
} // namespace rnr
