#include <gtest/gtest.h>

#include "cpu/system.h"
#include "test_util.h"

namespace rnr {
namespace {

MachineConfig
twoCores()
{
    MachineConfig m = test::tinyMachine();
    m.cores = 2;
    return m;
}

TEST(SystemTest, RunsAllCoresToCompletion)
{
    System sys(twoCores());
    TraceBuffer t0, t1;
    for (int i = 0; i < 100; ++i) {
        t0.push(TraceRecord::load(0x10000 + Addr(i) * 64, 1, 2));
        t1.push(TraceRecord::load(0x90000 + Addr(i) * 64, 2, 2));
    }
    IterationResult r = sys.run({&t0, &t1});
    EXPECT_TRUE(sys.core(0).done());
    EXPECT_TRUE(sys.core(1).done());
    EXPECT_EQ(r.instructions, t0.instructions() + t1.instructions());
    EXPECT_GT(r.cycles(), 0u);
}

TEST(SystemTest, EmptyTracesAreLegal)
{
    System sys(twoCores());
    TraceBuffer t0, t1;
    IterationResult r = sys.run({&t0, &t1});
    EXPECT_EQ(r.instructions, 0u);
}

TEST(SystemTest, BarrierSynchronisesIterations)
{
    System sys(twoCores());
    TraceBuffer big, small;
    for (int i = 0; i < 500; ++i)
        big.push(TraceRecord::load(0x10000 + Addr(i) * 64, 1, 8));
    small.push(TraceRecord::load(0x90000, 2, 0));

    IterationResult first = sys.run({&big, &small});
    // The next iteration starts at the barrier: both cores' clocks are
    // at least the previous max finish.
    IterationResult second = sys.run({&small, &big});
    EXPECT_GE(second.start, first.end);
}

TEST(SystemTest, SharedResourcesCoupleCores)
{
    // Two cores hammering the same DRAM finish later than one core
    // doing half the work alone.
    MachineConfig m = twoCores();
    System both(m);
    TraceBuffer a, b;
    for (int i = 0; i < 2000; ++i) {
        a.push(TraceRecord::load(0x100000 + Addr(i * 37 % 4096) * 64, 1, 1));
        b.push(TraceRecord::load(0x900000 + Addr(i * 53 % 4096) * 64, 2, 1));
    }
    IterationResult rb = both.run({&a, &b});

    System alone(m);
    TraceBuffer empty;
    IterationResult ra = alone.run({&a, &empty});
    EXPECT_GT(rb.cycles(), ra.cycles());
}

TEST(SystemTest, IterationCyclesAreMaxAcrossCores)
{
    System sys(twoCores());
    TraceBuffer t0, t1;
    for (int i = 0; i < 300; ++i)
        t0.push(TraceRecord::load(0x10000 + Addr(i) * 64, 1, 4));
    t1.push(TraceRecord::load(0x90000, 2, 0));
    IterationResult r = sys.run({&t0, &t1});
    EXPECT_GE(r.end, sys.core(0).finishTime());
    EXPECT_GE(r.end, sys.core(1).finishTime());
}

} // namespace
} // namespace rnr
