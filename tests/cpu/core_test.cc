#include <gtest/gtest.h>

#include "cpu/core.h"
#include "test_util.h"

namespace rnr {
namespace {

struct CoreFixture : ::testing::Test {
    CoreFixture() : ms(test::tinyMachine()), core(0, cfg(), &ms) {}

    static CoreConfig
    cfg()
    {
        CoreConfig c;
        c.issue_width = 4;
        c.rob_size = 16;
        c.lsq_size = 4;
        return c;
    }

    MemorySystem ms;
    CoreModel core;
    TraceBuffer trace;
};

TEST_F(CoreFixture, EmptyTraceIsDone)
{
    core.setTrace(&trace);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.time(), 0u);
}

TEST_F(CoreFixture, GapAdvancesIssueClockAtIssueWidth)
{
    TraceRecord r = TraceRecord::load(0x1000, 1, /*gap=*/39);
    trace.push(r);
    core.setTrace(&trace);
    core.step();
    // 39 gap instructions + 1 load = 40 instructions at 4-wide = 10 cyc.
    EXPECT_EQ(core.time(), 10u);
    EXPECT_EQ(core.instructionsRetired(), 40u);
}

TEST_F(CoreFixture, LoadsOverlapInsideTheWindow)
{
    // Two independent loads to different blocks: the second issues
    // before the first completes.
    trace.push(TraceRecord::load(0x10000, 1, 0));
    trace.push(TraceRecord::load(0x20000, 2, 0));
    core.setTrace(&trace);
    core.step();
    const Tick t_after_first = core.time();
    core.step();
    EXPECT_LE(core.time(), t_after_first + 1);
    // Both are in flight; the finish time covers the slower one.
    EXPECT_GT(core.finishTime(), core.time());
}

TEST_F(CoreFixture, LsqFullStallsIssue)
{
    // More loads than LSQ entries, all missing to DRAM.
    for (int i = 0; i < 8; ++i)
        trace.push(TraceRecord::load(Addr(0x100000) + Addr(i) * 0x10000,
                                     1, 0));
    core.setTrace(&trace);
    core.runToCompletion();
    EXPECT_GT(core.stats().get("lsq_stall_cycles"), 0u);
}

TEST_F(CoreFixture, RobFullStallsOnLongLatencyHead)
{
    // One miss followed by many plain instructions: the ROB (16 slots)
    // fills with gap instructions while the load is outstanding.
    trace.push(TraceRecord::load(0x90000, 1, 0));
    for (int i = 0; i < 10; ++i)
        trace.push(TraceRecord::load(0x90000, 1, /*gap=*/14));
    core.setTrace(&trace);
    core.runToCompletion();
    EXPECT_GT(core.stats().get("rob_stall_cycles") +
                  core.stats().get("lsq_stall_cycles"),
              0u);
}

TEST_F(CoreFixture, StoresDoNotBlockRetirement)
{
    trace.push(TraceRecord::store(0x50000, 1, 0));
    trace.push(TraceRecord::load(0x50040, 2, 0));
    core.setTrace(&trace);
    core.step();
    // The store completed immediately from the core's perspective.
    EXPECT_LE(core.time(), 2u);
    EXPECT_EQ(core.stats().get("stores"), 1u);
}

TEST_F(CoreFixture, ControlRecordsReachThePrefetcher)
{
    struct Probe : Prefetcher {
        int controls = 0;
        void onAccess(const L2AccessInfo &) override {}
        void
        onControl(const TraceRecord &, Tick) override
        {
            ++controls;
        }
        std::string name() const override { return "probe"; }
    } probe;
    ms.setPrefetcher(0, &probe);

    trace.push(TraceRecord::control(RnrOp::Start));
    trace.push(TraceRecord::control(RnrOp::EndState));
    core.setTrace(&trace);
    core.runToCompletion();
    EXPECT_EQ(probe.controls, 2);
    EXPECT_EQ(core.stats().get("control_records"), 2u);
}

TEST_F(CoreFixture, SyncToAdvancesClockMonotonically)
{
    trace.push(TraceRecord::load(0x1000, 1, 3));
    core.setTrace(&trace);
    core.runToCompletion();
    const Tick t = core.finishTime();
    core.syncTo(t + 100);
    EXPECT_GE(core.time(), t + 100);
    core.syncTo(t); // must not move backwards
    EXPECT_GE(core.time(), t + 100);
}

TEST_F(CoreFixture, FinishTimeCoversOutstandingLoads)
{
    trace.push(TraceRecord::load(0x70000, 1, 0));
    core.setTrace(&trace);
    core.step();
    EXPECT_GE(core.finishTime(), core.time());
    EXPECT_GT(core.finishTime(), 10u); // DRAM latency outstanding
}

} // namespace
} // namespace rnr
