/**
 * @file
 * Batched-vs-legacy kernel parity: the block-at-a-time kernel
 * (sim/kernel.h) must be bit-identical to the seed per-record path on
 * every observable — cycle accounting, instruction counts and every
 * counter of RNR_ITER_STAT_FIELDS — because the legacy kernel is the
 * reference the RNR_KERNEL=legacy escape hatch preserves for one
 * release.  The scenarios deliberately cover the cases where the two
 * loops could diverge: multi-core interleaving through the shared
 * LLC/DRAM, control records mid-run, traces longer than one staging
 * block, and RnR record/replay with window closes and pace recomputes
 * straddling block boundaries.
 */
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/system.h"
#include "harness/system_counters.h"
#include "prefetch/factory.h"
#include "sim/kernel.h"
#include "test_util.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

namespace rnr {
namespace {

/** Every counter of both systems must agree exactly. */
void
expectCountersEqual(System &batched, System &legacy)
{
    const SystemCounters a = SystemCounters::capture(batched);
    const SystemCounters b = SystemCounters::capture(legacy);
#define RNR_CHECK_FIELD(type, name) EXPECT_EQ(a.name, b.name) << #name;
    RNR_ITER_STAT_FIELDS(RNR_CHECK_FIELD)
#undef RNR_CHECK_FIELD
}

void
expectIterationEqual(const IterationResult &a, const IterationResult &b)
{
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.instructions, b.instructions);
}

/** Two cores contending in the shared LLC/DRAC address range, with
 *  loads, stores, gaps and control records mixed in. */
std::vector<TraceBuffer>
contendedTraces(std::size_t records_per_core)
{
    std::vector<TraceBuffer> bufs(2);
    bufs[0].push(TraceRecord::control(RnrOp::Init));
    bufs[0].push(TraceRecord::control(RnrOp::AddrBaseSet, 0x100000, 1 << 20));
    for (std::size_t i = 0; i < records_per_core; ++i) {
        // Both cores walk overlapping sets so LLC/DRAM contention makes
        // the drive() interleave observable in the counters.
        const Addr a0 = 0x100000 + Addr(i * 37 % 8192) * 64;
        const Addr a1 = 0x100000 + Addr(i * 53 % 8192) * 64;
        const std::uint16_t gap = static_cast<std::uint16_t>(i % 5);
        if (i % 7 == 0)
            bufs[0].push(TraceRecord::store(a0, 1 + i % 11, gap));
        else
            bufs[0].push(TraceRecord::load(a0, 1 + i % 11, gap));
        if (i % 9 == 0)
            bufs[1].push(TraceRecord::store(a1, 100 + i % 13, gap));
        else
            bufs[1].push(TraceRecord::load(a1, 100 + i % 13, gap));
        if (i == records_per_core / 2) {
            bufs[0].push(TraceRecord::control(RnrOp::Pause));
            bufs[1].push(TraceRecord::control(RnrOp::Resume));
        }
    }
    bufs[0].push(TraceRecord::control(RnrOp::EndState));
    return bufs;
}

TEST(KernelParityTest, ModeIsSelectedPerSystem)
{
    const MachineConfig m = test::tinyMachine();
    System batched(m, KernelMode::Batched);
    System legacy(m, KernelMode::Legacy);
    EXPECT_EQ(batched.core(0).kernel(), KernelMode::Batched);
    EXPECT_EQ(legacy.core(0).kernel(), KernelMode::Legacy);
}

TEST(KernelParityTest, TwoCoreContentionBitIdentical)
{
    MachineConfig m = test::tinyMachine();
    m.cores = 2;
    System batched(m, KernelMode::Batched);
    System legacy(m, KernelMode::Legacy);
    auto pfs_b = test::attachPrefetchers(batched, PrefetcherKind::Stream);
    auto pfs_l = test::attachPrefetchers(legacy, PrefetcherKind::Stream);

    // 6000 records per core: longer than one 4096-record staging block,
    // so runs straddle block boundaries under the batched kernel.
    const std::vector<TraceBuffer> bufs = contendedTraces(6000);
    const std::vector<const TraceBuffer *> ptrs = {&bufs[0], &bufs[1]};
    const IterationResult rb = batched.run(ptrs);
    const IterationResult rl = legacy.run(ptrs);

    expectIterationEqual(rb, rl);
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(batched.core(c).time(), legacy.core(c).time());
        EXPECT_EQ(batched.core(c).finishTime(), legacy.core(c).finishTime());
        EXPECT_EQ(batched.core(c).instructionsRetired(),
                  legacy.core(c).instructionsRetired());
    }
    expectCountersEqual(batched, legacy);
}

TEST(KernelParityTest, MultiIterationBarrierBitIdentical)
{
    MachineConfig m = test::tinyMachine();
    m.cores = 2;
    System batched(m, KernelMode::Batched);
    System legacy(m, KernelMode::Legacy);

    const std::vector<TraceBuffer> bufs = contendedTraces(1500);
    const std::vector<const TraceBuffer *> ptrs = {&bufs[0], &bufs[1]};
    for (int iter = 0; iter < 3; ++iter) {
        const IterationResult rb = batched.run(ptrs);
        const IterationResult rl = legacy.run(ptrs);
        expectIterationEqual(rb, rl);
    }
    expectCountersEqual(batched, legacy);
}

TEST(KernelParityTest, UnevenCoreLengthsBitIdentical)
{
    // One core's trace is a tiny fraction of the other's, so the
    // pick-min-time scheduler runs long stretches single-core after the
    // short core drains — including the drain happening mid-block.
    MachineConfig m = test::tinyMachine();
    m.cores = 2;
    System batched(m, KernelMode::Batched);
    System legacy(m, KernelMode::Legacy);

    std::vector<TraceBuffer> bufs(2);
    for (int i = 0; i < 5000; ++i)
        bufs[0].push(TraceRecord::load(0x10000 + Addr(i % 4096) * 64, 1,
                                       static_cast<std::uint16_t>(i % 3)));
    for (int i = 0; i < 37; ++i)
        bufs[1].push(TraceRecord::load(0x90000 + Addr(i) * 64, 2, 1));

    const std::vector<const TraceBuffer *> ptrs = {&bufs[0], &bufs[1]};
    expectIterationEqual(batched.run(ptrs), legacy.run(ptrs));
    expectCountersEqual(batched, legacy);
}

/**
 * Full RnR record/replay parity: iteration 0 records misses, the
 * replay iterations issue paced prefetches whose windows open and
 * close from record positions anywhere inside a staging block, and the
 * pace recompute spans block boundaries.  Both systems consume the
 * *same* emitted trace buffers so any divergence is the kernel's.
 */
TEST(KernelParityTest, RnrRecordReplayBitIdentical)
{
    MachineConfig m = test::tinyMachine();
    m.cores = 2;
    System batched(m, KernelMode::Batched);
    System legacy(m, KernelMode::Legacy);

    WorkloadOptions opts;
    opts.cores = 2;
    opts.use_rnr = true;
    opts.window_size = 512; // small windows: frequent closes mid-block
    PageRankWorkload wl(makeUrandGraph(3000, 8), opts);

    auto pfs_b =
        test::attachPrefetchers(batched, PrefetcherKind::Rnr, {}, &wl);
    auto pfs_l =
        test::attachPrefetchers(legacy, PrefetcherKind::Rnr, {}, &wl);
    for (unsigned c = 0; c < 2; ++c) {
        pfs_b[c]->configureFor(wl, c);
        pfs_l[c]->configureFor(wl, c);
    }

    const unsigned iterations = 3;
    std::vector<TraceBuffer> bufs(2);
    std::uint64_t total_records = 0;
    for (unsigned iter = 0; iter < iterations; ++iter) {
        for (auto &b : bufs)
            b.clear();
        wl.emitIteration(iter, iter + 1 == iterations, bufs);
        for (const auto &b : bufs)
            total_records += b.size();
        const std::vector<const TraceBuffer *> ptrs = {&bufs[0], &bufs[1]};
        const IterationResult rb = batched.run(ptrs);
        const IterationResult rl = legacy.run(ptrs);
        expectIterationEqual(rb, rl);
        expectCountersEqual(batched, legacy);
    }

    // The scenario must actually exercise the straddling cases: more
    // records than one staging block, and real replay prefetching.
    EXPECT_GT(total_records, 2u * TraceSource::kMaxBlockRecords);
    const SystemCounters c = SystemCounters::capture(batched);
    EXPECT_GT(c.rnr_recorded, 0u);
    EXPECT_GT(c.pf_issued, 0u);
}

} // namespace
} // namespace rnr
