/**
 * @file
 * End-to-end CLI tests for the trace_tools binary, driven over popen.
 * The binary path is injected by CMake as RNR_TRACE_TOOLS_BIN
 * ($<TARGET_FILE:trace_tools>), so these tests exercise the real
 * executable exactly as a user would:
 *
 *  - `help` lists every mode and exits 0;
 *  - `help <mode>` and `<mode> --help` work for every registered mode;
 *  - unknown modes print usage to stderr and exit 2, as does no mode;
 *  - `help --markdown` emits the registry-generated mode table and the
 *    copy embedded in README.md matches it byte-for-byte (README path
 *    injected as RNR_README_PATH);
 *  - `report` writes a parseable rnr-report-v2 JSON plus an HTML page
 *    with inline SVG (the full telemetry pipeline, out of process);
 *  - `attrib` prints exactly one rnr-attrib-v1 JSON line on stdout and
 *    exits 0 only when the attribution totals reconciled with the
 *    IterStats counters;
 *  - `farm` subcommands that cannot reach the daemon socket print one
 *    typed line and exit 4 (kFarmConnectExit in trace_tools.cpp).
 */
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"

#ifndef RNR_TRACE_TOOLS_BIN
#error "RNR_TRACE_TOOLS_BIN must point at the trace_tools binary"
#endif

namespace {

struct CliResult {
    int exit_code = -1;
    std::string output; ///< stdout + stderr, interleaved.
};

/** Runs @p args under the trace_tools binary with quiet harness env;
 *  @p extra_env prepends additional VAR=value pairs. */
CliResult
runTool(const std::string &args, const std::string &extra_env = "")
{
    const std::string cmd =
        "RNR_CACHE=0 RNR_TRACE_STORE=0 RNR_PROGRESS=0 " + extra_env +
        (extra_env.empty() ? "" : " ") +
        std::string(RNR_TRACE_TOOLS_BIN) + " " + args + " 2>&1";
    CliResult r;
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        r.output.append(buf, n);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        r.exit_code = WEXITSTATUS(status);
    return r;
}

const char *const kModes[] = {"capture",  "convert",   "simulate",
                              "stats",    "corpus",    "ckpt",
                              "inspect",  "rnr-trace", "attrib",
                              "report",   "help"};

TEST(TraceToolsCli, HelpListsEveryMode)
{
    const CliResult r = runTool("help");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    for (const char *mode : kModes)
        EXPECT_NE(r.output.find(mode), std::string::npos) << mode;
}

TEST(TraceToolsCli, EveryModeHasHelpText)
{
    for (const char *mode : kModes) {
        const CliResult byword = runTool(std::string("help ") + mode);
        EXPECT_EQ(byword.exit_code, 0) << mode << ": " << byword.output;
        EXPECT_NE(byword.output.find("usage:"), std::string::npos)
            << mode;
        EXPECT_NE(byword.output.find(mode), std::string::npos) << mode;

        const CliResult byflag = runTool(std::string(mode) + " --help");
        EXPECT_EQ(byflag.exit_code, 0) << mode << ": " << byflag.output;
        EXPECT_NE(byflag.output.find("usage:"), std::string::npos)
            << mode;
    }
}

TEST(TraceToolsCli, DashDashHelpAtTopLevel)
{
    EXPECT_EQ(runTool("--help").exit_code, 0);
    EXPECT_EQ(runTool("-h").exit_code, 0);
}

TEST(TraceToolsCli, UnknownModeExitsTwoWithUsage)
{
    const CliResult r = runTool("frobnicate");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TraceToolsCli, NoModeExitsTwoWithUsage)
{
    const CliResult r = runTool("");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TraceToolsCli, KnownModeWithWrongArityExitsTwo)
{
    EXPECT_EQ(runTool("convert").exit_code, 2);      // needs 2 args
    EXPECT_EQ(runTool("stats").exit_code, 2);        // needs a file
    EXPECT_EQ(runTool("capture onlyone").exit_code, 2);
    EXPECT_EQ(runTool("ckpt").exit_code, 2);         // needs a subcommand
    EXPECT_EQ(runTool("ckpt inspect").exit_code, 2); // needs a file
}

TEST(TraceToolsCli, HelpMarkdownEmitsTheModeTable)
{
    const CliResult r = runTool("help --markdown");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_EQ(r.output.rfind("| Mode | Arguments | Description |", 0), 0u)
        << r.output;
    for (const char *mode : kModes)
        EXPECT_NE(r.output.find(std::string("| `") + mode + "` |"),
                  std::string::npos)
            << mode;
}

TEST(TraceToolsCli, HelpMarkdownMatchesReadme)
{
    // README.md embeds the generated table between these markers; if
    // the registry changes, regenerate with:
    //   trace_tools help --markdown
    const std::string begin_marker = "<!-- trace_tools-modes:begin -->\n";
    const std::string end_marker = "<!-- trace_tools-modes:end -->";

    std::ifstream readme(RNR_README_PATH);
    ASSERT_TRUE(readme.good()) << RNR_README_PATH;
    std::stringstream buf;
    buf << readme.rdbuf();
    const std::string body = buf.str();

    const std::size_t begin = body.find(begin_marker);
    ASSERT_NE(begin, std::string::npos)
        << "README.md lost its trace_tools-modes:begin marker";
    const std::size_t start = begin + begin_marker.size();
    const std::size_t end = body.find(end_marker, start);
    ASSERT_NE(end, std::string::npos)
        << "README.md lost its trace_tools-modes:end marker";
    const std::string embedded = body.substr(start, end - start);

    const CliResult r = runTool("help --markdown");
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_EQ(embedded, r.output)
        << "README.md mode table is stale; re-run "
           "`trace_tools help --markdown` and paste between the markers";
}

TEST(TraceToolsCli, FarmConnectFailureExitsFourWithTypedError)
{
    // No daemon can live at this socket: the parent dir is absent, so
    // connect(2) fails ENOENT and the client renders the typed hint.
    const CliResult r =
        runTool("farm status --socket /nonexistent/rnr_cli_test.sock");
    EXPECT_EQ(r.exit_code, 4) << r.output;
    EXPECT_NE(r.output.find("no daemon socket at"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("is rnr_farmd running?"), std::string::npos)
        << r.output;
}

TEST(TraceToolsCli, FarmMetricsConnectFailureExitsFour)
{
    const CliResult r =
        runTool("farm metrics --socket /nonexistent/rnr_cli_test.sock");
    EXPECT_EQ(r.exit_code, 4) << r.output;
    EXPECT_NE(r.output.find("is rnr_farmd running?"), std::string::npos)
        << r.output;
}

/** Writes a minimal valid (or checksum-broken) snapshot to @p path. */
void
writeTestSnapshot(const std::string &path, std::uint64_t window,
                  bool corrupt)
{
    rnr::ckpt::SnapshotWriter w(rnr::ckpt::SnapshotHeader{
        "app=pagerank input=urand", window ? "full-key" : "", window});
    w.section(window ? rnr::ckpt::SectionId::System
                     : rnr::ckpt::SectionId::Input)
        .scalar(std::uint64_t{42});
    std::vector<std::uint8_t> blob = w.finish();
    if (corrupt)
        blob[blob.size() / 2] ^= 0x01;
    ASSERT_TRUE(rnr::ckpt::writeSnapshotFile(path, blob).ok());
}

TEST(TraceToolsCli, CkptInspectDecodesSnapshotHeader)
{
    const std::string path =
        ::testing::TempDir() + "trace_tools_cli_inspect.ckpt";
    writeTestSnapshot(path, 2, /*corrupt=*/false);

    const CliResult r = runTool("ckpt inspect " + path);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("rnr-ckpt-v1"), std::string::npos);
    EXPECT_NE(r.output.find("app=pagerank input=urand"),
              std::string::npos);
    EXPECT_NE(r.output.find("full-key"), std::string::npos);
    EXPECT_NE(r.output.find("System"), std::string::npos);
    // The printed checksum is the real trailer, not a zeroed field.
    EXPECT_NE(r.output.find("checksum 0x"), std::string::npos);
    EXPECT_EQ(r.output.find("checksum 0x0000000000000000"),
              std::string::npos);

    // A corrupt snapshot is a typed one-liner + exit 1.
    writeTestSnapshot(path, 2, /*corrupt=*/true);
    const CliResult bad = runTool("ckpt inspect " + path);
    EXPECT_EQ(bad.exit_code, 1) << bad.output;
    EXPECT_NE(bad.output.find("cannot inspect"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceToolsCli, CkptListAndGcSweepTheStore)
{
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "trace_tools_cli_ckpt_store";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string env = "RNR_CKPT_DIR=" + dir;

    writeTestSnapshot(dir + "/good.ckpt", 1, /*corrupt=*/false);
    writeTestSnapshot(dir + "/bad.ckpt", 1, /*corrupt=*/true);
    { // a stale publish temp file (crashed before its rename)
        std::ofstream out(dir + "/old.ckpt.tmp.999");
        out << "partial";
    }

    const CliResult list = runTool("ckpt list", env);
    EXPECT_EQ(list.exit_code, 0) << list.output;
    EXPECT_NE(list.output.find("2 snapshots"), std::string::npos)
        << list.output;
    EXPECT_NE(list.output.find("CORRUPT"), std::string::npos);

    const CliResult gc = runTool("ckpt gc", env);
    EXPECT_EQ(gc.exit_code, 0) << gc.output;
    EXPECT_NE(gc.output.find("removed 1 corrupt, 1 stale"),
              std::string::npos)
        << gc.output;
    EXPECT_TRUE(fs::exists(dir + "/good.ckpt"));
    EXPECT_FALSE(fs::exists(dir + "/bad.ckpt"));
    EXPECT_FALSE(fs::exists(dir + "/old.ckpt.tmp.999"));

    const CliResult after = runTool("ckpt list", env);
    EXPECT_NE(after.output.find("1 snapshot"), std::string::npos)
        << after.output;
    fs::remove_all(dir);
}

TEST(TraceToolsCli, ReportModeWritesJsonAndHtml)
{
    const std::string prefix =
        ::testing::TempDir() + "trace_tools_cli_report";
    std::remove((prefix + ".json").c_str());
    std::remove((prefix + ".html").c_str());

    const CliResult r = runTool(
        "report pagerank urand " + prefix +
        " --sample-cycles 4096 --iterations 2 --cores 2");
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("wrote"), std::string::npos);

    std::ifstream json(prefix + ".json");
    ASSERT_TRUE(json.good()) << prefix << ".json missing";
    std::stringstream jbuf;
    jbuf << json.rdbuf();
    const std::string jbody = jbuf.str();
    EXPECT_NE(jbody.find("rnr-report-v2"), std::string::npos);
    EXPECT_NE(jbody.find("n_pace"), std::string::npos);
    EXPECT_NE(jbody.find("seq_buffer_bytes"), std::string::npos);
    EXPECT_NE(jbody.find("rnr-attrib-v1"), std::string::npos);

    std::ifstream html(prefix + ".html");
    ASSERT_TRUE(html.good()) << prefix << ".html missing";
    std::stringstream hbuf;
    hbuf << html.rdbuf();
    EXPECT_NE(hbuf.str().find("<svg"), std::string::npos);
    EXPECT_NE(hbuf.str().find("class=\"attrib-sites\""),
              std::string::npos);
    EXPECT_NE(hbuf.str().find("class=\"heatmap\""), std::string::npos);

    std::remove((prefix + ".json").c_str());
    std::remove((prefix + ".html").c_str());
}

TEST(TraceToolsCli, AttribModeEmitsOneReconciledJsonLine)
{
    // stdout is the machine-readable surface (one rnr-attrib-v1 line);
    // the human-facing reconciliation verdict goes to stderr.  runTool
    // merges the two streams, so split on lines and find the JSON one.
    const CliResult r =
        runTool("attrib pagerank amazon rnr --iterations 2 --cores 2");
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("attrib/counter reconciliation: exact"),
              std::string::npos)
        << r.output;

    std::istringstream lines(r.output);
    std::string line, json;
    std::size_t json_lines = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("{\"schema\": \"rnr-attrib-v1\"", 0) == 0) {
            json = line;
            ++json_lines;
        }
    }
    ASSERT_EQ(json_lines, 1u) << r.output;

    // Golden schema: every top-level key of the rnr-attrib-v1 object,
    // in emission order.
    std::size_t pos = 0;
    for (const char *key :
         {"\"schema\"", "\"totals\"", "\"rnr\"", "\"pollution_filter\"",
          "\"sites\"", "\"sites_tracked\"", "\"site_other\"",
          "\"regions\"", "\"regions_tracked\"", "\"region_other\"",
          "\"windows\"", "\"window_overflow\""}) {
        const std::size_t at = json.find(key, pos);
        ASSERT_NE(at, std::string::npos) << key << " in " << json;
        pos = at;
    }
    // An RnR run attributes its replay lane: lane sites carry bit 31.
    EXPECT_NE(json.find("\"rnr\": true"), std::string::npos) << json;
}

TEST(TraceToolsCli, AttribModeWrongArityExitsTwo)
{
    EXPECT_EQ(runTool("attrib pagerank amazon rnr --iterations").exit_code,
              2);
    EXPECT_EQ(runTool("attrib pagerank amazon nosuchpf").exit_code, 2);
}

} // namespace
