/**
 * @file
 * Context-switch storm tests: determinism, switch accounting, and the
 * paper's A/B — saving/restoring RnR state across switches preserves
 * replay accuracy and hit rate, losing it does not.
 */
#include <gtest/gtest.h>

#include "ckpt/switch_schedule.h"
#include "core/rnr_prefetcher.h"

namespace rnr {
namespace ckpt {
namespace {

SwitchStormConfig
stormy()
{
    SwitchStormConfig cfg;
    cfg.tenants = 4;
    cfg.quantum = 16;
    cfg.seq_len = 192;
    cfg.window_size = 16;
    return cfg;
}

TEST(SwitchSchedule, StormIsDeterministic)
{
    const SwitchStormConfig cfg = stormy();
    const SwitchStormResult a = runSwitchStorm(cfg);
    const SwitchStormResult b = runSwitchStorm(cfg);
    EXPECT_EQ(a.switches, b.switches);
    EXPECT_EQ(a.recorded_entries, b.recorded_entries);
    EXPECT_EQ(a.state_bytes_per_switch, b.state_bytes_per_switch);
    EXPECT_EQ(a.pf_issued, b.pf_issued);
    EXPECT_EQ(a.pf_useful, b.pf_useful);
    EXPECT_EQ(a.pf_ontime, b.pf_ontime);
    EXPECT_EQ(a.pf_early, b.pf_early);
    EXPECT_EQ(a.pf_late, b.pf_late);
    EXPECT_EQ(a.pf_out_of_window, b.pf_out_of_window);
    EXPECT_EQ(a.replay_accesses, b.replay_accesses);
    EXPECT_EQ(a.replay_hits, b.replay_hits);
}

TEST(SwitchSchedule, QuantumControlsSwitchCount)
{
    SwitchStormConfig cfg = stormy();
    const unsigned quanta_per_tenant =
        (cfg.seq_len + cfg.quantum - 1) / cfg.quantum;
    const SwitchStormResult r = runSwitchStorm(cfg);
    EXPECT_EQ(r.switches, std::uint64_t{cfg.tenants} * quanta_per_tenant);
    EXPECT_EQ(r.replay_accesses,
              std::uint64_t{cfg.tenants} * cfg.seq_len);
    EXPECT_GT(r.recorded_entries, 0u);
    EXPECT_LE(r.recorded_entries,
              std::uint64_t{cfg.tenants} * cfg.seq_len);
}

TEST(SwitchSchedule, StateAccountingMatchesTheDesign)
{
    SwitchStormConfig cfg = stormy();
    const SwitchStormResult saved = runSwitchStorm(cfg);
    // The paper's per-switch architectural payload is fixed and small.
    EXPECT_EQ(saved.arch_state_bytes, RnrPrefetcher::contextSwitchBytes());
    EXPECT_GT(saved.arch_state_bytes, 0u);
    // The simulator's full-model state is larger (it carries the
    // in-memory tables too) but still bounded and reported.
    EXPECT_GE(saved.state_bytes_per_switch, saved.arch_state_bytes);

    cfg.save_restore = false;
    const SwitchStormResult lost = runSwitchStorm(cfg);
    EXPECT_EQ(lost.state_bytes_per_switch, 0u); // nothing travels
    EXPECT_EQ(lost.switches, saved.switches);   // same schedule
}

TEST(SwitchSchedule, SaveRestoreBeatsStateLossUnderPressure)
{
    SwitchStormConfig cfg = stormy();
    const SwitchStormResult saved = runSwitchStorm(cfg);
    cfg.save_restore = false;
    const SwitchStormResult lost = runSwitchStorm(cfg);

    // With its state travelling, replay tracks the demand cursor and
    // serves it; with state lost, replay restarts at the head of the
    // sequence every quantum and the tail is never covered.
    EXPECT_GT(saved.replay_hits, lost.replay_hits);
    EXPECT_GT(saved.pf_useful, lost.pf_useful);
    EXPECT_GE(saved.accuracy(), lost.accuracy());
    EXPECT_GT(saved.hitRate(), lost.hitRate());
}

TEST(SwitchSchedule, LongQuantumApproachesUnpreemptedReplay)
{
    // One quantum spanning the whole sequence = a single switch per
    // tenant; the save/restore machinery must not perturb that case.
    SwitchStormConfig cfg = stormy();
    cfg.quantum = cfg.seq_len;
    const SwitchStormResult one = runSwitchStorm(cfg);
    EXPECT_EQ(one.switches, std::uint64_t{cfg.tenants});

    // Preempting with save/restore keeps most of the unpreempted hit
    // rate (cache pollution between quanta costs a little; the state
    // itself loses nothing).
    cfg.quantum = 16;
    const SwitchStormResult many = runSwitchStorm(cfg);
    EXPECT_GT(many.hitRate(), 0.5 * one.hitRate());
}

} // namespace
} // namespace ckpt
} // namespace rnr
