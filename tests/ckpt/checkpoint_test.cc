/**
 * @file
 * rnr-ckpt-v1 container tests plus the tentpole's restore-fidelity
 * matrix: checkpoint at window k, restore, run to the end — the
 * IterStats and the sweep JSON must be byte-identical to the straight
 * run, for {pagerank, spcg} x {droplet, rnr} under both RNR_KERNEL
 * modes, including restoring under the kernel that did not capture.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/ckpt_store.h"
#include "ckpt/input_fork.h"
#include "harness/result_cache.h"
#include "harness/runner.h"
#include "harness/sweep.h"

namespace rnr {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("rnr_ckpt_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name())))
                    .string();
        fs::remove_all(root_);
        setenv("RNR_CKPT_DIR", root_.c_str(), 1);
        unsetenv("RNR_CKPT");
        unsetenv("RNR_KERNEL");
        // Hermetic: no result cache, no trace corpus, no progress bars.
        setenv("RNR_CACHE", "0", 1);
        setenv("RNR_TRACE_STORE", "0", 1);
        setenv("RNR_PROGRESS", "0", 1);
        ckpt::CheckpointStore::instance().resetForTest();
        ckpt::resetInputForkForTest();
        ResultCache::instance().clearForTest();
    }

    void
    TearDown() override
    {
        ckpt::CheckpointStore::instance().resetForTest();
        ckpt::resetInputForkForTest();
        unsetenv("RNR_CKPT_DIR");
        unsetenv("RNR_KERNEL");
        fs::remove_all(root_);
    }

    static ExperimentConfig
    smallConfig(const std::string &app, PrefetcherKind pf)
    {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.input = app == "spcg" ? "atmosmodj" : "urand";
        cfg.prefetcher = pf;
        cfg.iterations = 3;
        cfg.cores = 2;
        return cfg;
    }

    static void
    expectSameResult(const ExperimentResult &a, const ExperimentResult &b,
                     const std::string &what)
    {
        ASSERT_EQ(a.iterations.size(), b.iterations.size()) << what;
        for (std::size_t i = 0; i < a.iterations.size(); ++i) {
#define RNR_CHECK_FIELD(type, name)                                          \
    EXPECT_EQ(a.iterations[i].name, b.iterations[i].name)                    \
        << what << " iter " << i << " field " #name;
            RNR_ITER_STAT_FIELDS(RNR_CHECK_FIELD)
#undef RNR_CHECK_FIELD
        }
        EXPECT_EQ(a.input_bytes, b.input_bytes) << what;
        EXPECT_EQ(a.target_bytes, b.target_bytes) << what;
        EXPECT_EQ(a.seq_table_bytes, b.seq_table_bytes) << what;
        EXPECT_EQ(a.div_table_bytes, b.div_table_bytes) << what;
    }

    static std::string
    fileBytes(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    std::string root_;
};

TEST_F(CheckpointTest, ContainerRoundTripsHeaderAndSections)
{
    ckpt::SnapshotWriter w(ckpt::SnapshotHeader{"wkey", "fullkey", 2});
    {
        ckpt::Ser &s = w.section(ckpt::SectionId::Meta);
        s.scalar(std::uint64_t{42});
    }
    {
        ckpt::Ser &s = w.section(ckpt::SectionId::System);
        s.scalar(std::uint64_t{7});
        s.scalar(std::uint64_t{8});
    }
    const std::vector<std::uint8_t> blob = w.finish();

    ckpt::SnapshotReader r;
    ASSERT_TRUE(r.parse(blob).ok());
    EXPECT_EQ(r.header().workload_key, "wkey");
    EXPECT_EQ(r.header().full_key, "fullkey");
    EXPECT_EQ(r.header().window, 2u);
    ASSERT_EQ(r.sections().size(), 2u);
    EXPECT_TRUE(r.hasSection(ckpt::SectionId::Meta));
    EXPECT_TRUE(r.hasSection(ckpt::SectionId::System));
    EXPECT_FALSE(r.hasSection(ckpt::SectionId::Harness));

    ckpt::Deser meta = r.section(ckpt::SectionId::Meta);
    std::uint64_t v = 0;
    meta.scalar(v);
    EXPECT_TRUE(meta.ok());
    EXPECT_EQ(v, 42u);
    EXPECT_EQ(meta.remaining(), 0u);

    ckpt::Deser sys = r.section(ckpt::SectionId::System);
    sys.scalar(v);
    EXPECT_EQ(v, 7u);
    sys.scalar(v);
    EXPECT_EQ(v, 8u);
    EXPECT_TRUE(sys.ok());

    // An absent section reads as an empty archive, not a crash.
    ckpt::Deser missing = r.section(ckpt::SectionId::Harness);
    missing.scalar(v);
    EXPECT_FALSE(missing.ok());
}

TEST_F(CheckpointTest, CorruptContainersFailTyped)
{
    ckpt::SnapshotWriter w(ckpt::SnapshotHeader{"k", "", 0});
    w.section(ckpt::SectionId::Input).scalar(std::uint64_t{1});
    const std::vector<std::uint8_t> blob = w.finish();
    ckpt::SnapshotReader r;

    // Bit flip anywhere -> BadChecksum.
    std::vector<std::uint8_t> flipped = blob;
    flipped[blob.size() / 2] ^= 0x40;
    EXPECT_EQ(r.parse(flipped).status, ckpt::CkptIoStatus::BadChecksum);

    // Truncation -> Truncated.
    std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + 10);
    EXPECT_EQ(r.parse(cut).status, ckpt::CkptIoStatus::Truncated);

    // Wrong magic -> BadMagic.
    std::vector<std::uint8_t> magic = blob;
    magic[0] = 'X';
    EXPECT_EQ(r.parse(magic).status, ckpt::CkptIoStatus::BadMagic);

    // Future version (with a recomputed checksum) -> BadVersion.
    std::vector<std::uint8_t> ver = blob;
    ver[8] = 2; // version u64 starts right after the 8-byte magic
    const std::uint64_t sum =
        ckpt::fnv1a64(ver.data(), ver.size() - 8);
    for (int i = 0; i < 8; ++i)
        ver[ver.size() - 8 + i] =
            static_cast<std::uint8_t>(sum >> (8 * i));
    EXPECT_EQ(r.parse(ver).status, ckpt::CkptIoStatus::BadVersion);
}

TEST_F(CheckpointTest, SnapshotFileRoundTripsAndInspects)
{
    ckpt::SnapshotWriter w(ckpt::SnapshotHeader{"wkey", "full", 1});
    w.section(ckpt::SectionId::Meta).scalar(std::uint64_t{5});
    const std::vector<std::uint8_t> blob = w.finish();

    const std::string path = root_ + "/snap.ckpt";
    ASSERT_TRUE(ckpt::writeSnapshotFile(path, blob).ok());
    // The publish left no temp file behind.
    std::size_t files = 0;
    for (const auto &f : fs::directory_iterator(root_)) {
        (void)f;
        ++files;
    }
    EXPECT_EQ(files, 1u);

    std::vector<std::uint8_t> back;
    ASSERT_TRUE(ckpt::readSnapshotFile(path, back).ok());
    EXPECT_EQ(back, blob);

    ckpt::SnapshotInfo info;
    ASSERT_TRUE(ckpt::inspectSnapshotFile(path, info).ok());
    EXPECT_EQ(info.header.workload_key, "wkey");
    EXPECT_EQ(info.header.window, 1u);
    EXPECT_EQ(info.total_bytes, blob.size());
    ASSERT_EQ(info.sections.size(), 1u);
    EXPECT_EQ(info.sections[0].id,
              static_cast<std::uint64_t>(ckpt::SectionId::Meta));

    EXPECT_EQ(ckpt::readSnapshotFile(root_ + "/absent.ckpt", back).status,
              ckpt::CkptIoStatus::OpenFail);
}

TEST_F(CheckpointTest, SnapshotCoversEverySection)
{
    // Registration assertion: every section in the registry is carried
    // by a full snapshot, an input snapshot, or is explicitly reserved.
    // Adding a section to RNR_CKPT_SECTIONS without teaching the
    // capture paths about it fails here.
    ExperimentConfig cfg = smallConfig("pagerank", PrefetcherKind::Rnr);
    std::vector<std::uint8_t> full_blob;
    (void)runExperimentCheckpointed(cfg, 1, full_blob);
    ckpt::SnapshotReader full;
    ASSERT_TRUE(full.parse(full_blob).ok());
    EXPECT_EQ(full.header().workload_key, cfg.workloadKey());
    EXPECT_EQ(full.header().full_key, cfg.key());

    std::vector<std::uint8_t> input_blob;
    ASSERT_TRUE(ckpt::CheckpointStore::instance().tryLoad(
        cfg.workloadKey(), 0, input_blob))
        << "the run should have published an input snapshot";
    ckpt::SnapshotReader input;
    ASSERT_TRUE(input.parse(input_blob).ok());
    EXPECT_TRUE(input.header().full_key.empty());

    const std::set<ckpt::SectionId> reserved = {
        ckpt::SectionId::Workload};
    for (ckpt::SectionId id : ckpt::allSectionIds()) {
        const bool covered =
            full.hasSection(id) || input.hasSection(id);
        EXPECT_TRUE(covered || reserved.count(id))
            << "section " << ckpt::toString(id)
            << " is registered but never captured (and not reserved)";
    }
    // And the names are wired up.
    for (ckpt::SectionId id : ckpt::allSectionIds())
        EXPECT_STRNE(ckpt::toString(id), "?");
}

TEST_F(CheckpointTest, RestoreContinuationIsBitIdentical)
{
    for (const char *kernel : {"batched", "legacy"}) {
        if (std::string(kernel) == "legacy")
            setenv("RNR_KERNEL", "legacy", 1);
        else
            unsetenv("RNR_KERNEL");
        for (const std::string app : {"pagerank", "spcg"}) {
            for (PrefetcherKind pf :
                 {PrefetcherKind::Droplet, PrefetcherKind::Rnr}) {
                const ExperimentConfig cfg = smallConfig(app, pf);
                const std::string what = std::string(kernel) + "/" +
                                         app + "/" + toString(pf);

                const ExperimentResult straight =
                    runExperimentUncached(cfg);
                std::vector<std::uint8_t> blob;
                const ExperimentResult snapped =
                    runExperimentCheckpointed(cfg, 1, blob);
                expectSameResult(straight, snapped,
                                 what + " (snapshotting run)");

                const ExperimentResult resumed =
                    runExperimentFromSnapshot(cfg, blob);
                expectSameResult(straight, resumed,
                                 what + " (restored run)");

                // Sweep JSON: byte-identical exports.
                const std::string a = root_ + "/straight.json";
                const std::string b = root_ + "/resumed.json";
                ASSERT_TRUE(writeResultsJson(a, {straight}, "fidelity"));
                ASSERT_TRUE(writeResultsJson(b, {resumed}, "fidelity"));
                EXPECT_EQ(fileBytes(a), fileBytes(b)) << what;
            }
        }
    }
}

TEST_F(CheckpointTest, CrossKernelRestoreIsBitIdentical)
{
    // Capture under the batched kernel, restore under legacy: legal by
    // the kernel-parity contract, and still bit-identical.
    const ExperimentConfig cfg =
        smallConfig("pagerank", PrefetcherKind::Rnr);
    unsetenv("RNR_KERNEL");
    const ExperimentResult straight = runExperimentUncached(cfg);
    std::vector<std::uint8_t> blob;
    (void)runExperimentCheckpointed(cfg, 2, blob);

    setenv("RNR_KERNEL", "legacy", 1);
    const ExperimentResult resumed = runExperimentFromSnapshot(cfg, blob);
    expectSameResult(straight, resumed, "batched-capture/legacy-restore");
}

TEST_F(CheckpointTest, CorruptSnapshotThrowsTypedAndStoreRecaptures)
{
    const ExperimentConfig cfg =
        smallConfig("pagerank", PrefetcherKind::Droplet);
    std::vector<std::uint8_t> blob;
    const ExperimentResult straight =
        runExperimentCheckpointed(cfg, 1, blob);

    // Truncated blob -> typed CorruptSnapshot, never a crash.
    std::vector<std::uint8_t> cut(blob.begin(),
                                  blob.begin() + blob.size() / 2);
    try {
        (void)runExperimentFromSnapshot(cfg, cut);
        FAIL() << "truncated snapshot must throw";
    } catch (const ckpt::CorruptSnapshot &e) {
        EXPECT_NE(e.status, ckpt::CkptIoStatus::Ok);
    }

    // Wrong config -> KeyMismatch.
    ExperimentConfig other = cfg;
    other.prefetcher = PrefetcherKind::Rnr;
    try {
        (void)runExperimentFromSnapshot(other, blob);
        FAIL() << "foreign snapshot must throw";
    } catch (const ckpt::CorruptSnapshot &e) {
        EXPECT_EQ(e.status, ckpt::CkptIoStatus::KeyMismatch);
    }

    // Store front door: publish a corrupt snapshot into the slot; the
    // resumable run quarantines it and re-produces, bit-identically.
    ckpt::CheckpointStore &store = ckpt::CheckpointStore::instance();
    ASSERT_TRUE(ckpt::writeSnapshotFile(
                    ckpt::CheckpointStore::snapshotPath(cfg.key(), 1),
                    cut)
                    .ok());
    const std::uint64_t quarantines_before = store.quarantines();
    const ExperimentResult recovered = runExperimentResumable(cfg, 1);
    expectSameResult(straight, recovered, "recaptured-after-corrupt");
    EXPECT_GT(store.quarantines(), quarantines_before);

    // And the re-published snapshot now restores cleanly.
    const std::uint64_t restores_before = store.restores();
    const ExperimentResult resumed = runExperimentResumable(cfg, 1);
    expectSameResult(straight, resumed, "restored-after-recapture");
    EXPECT_EQ(store.restores(), restores_before + 1);
}

} // namespace
} // namespace rnr
