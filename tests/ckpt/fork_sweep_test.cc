/**
 * @file
 * Checkpoint-fork sweep tests — the acceptance criterion in code: a
 * sweep over >= 4 prefetcher configs sharing one workloadKey() performs
 * exactly one warm-up (asserted through both the store counters and the
 * metrics registry) while producing sweep JSON byte-identical to a
 * plain (RNR_CKPT=0) sweep.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/ckpt_store.h"
#include "ckpt/input_fork.h"
#include "harness/result_cache.h"
#include "harness/sweep.h"
#include "obs/metrics.h"

namespace rnr {
namespace {

namespace fs = std::filesystem;

class ForkSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("rnr_fork_sweep_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name())))
                    .string();
        fs::remove_all(root_);
        fs::create_directories(root_);
        setenv("RNR_CKPT_DIR", (root_ + "/ckpt").c_str(), 1);
        unsetenv("RNR_CKPT");
        setenv("RNR_CACHE", "0", 1);
        setenv("RNR_TRACE_STORE", "0", 1);
        setenv("RNR_PROGRESS", "0", 1);
        unsetenv("RNR_KERNEL");
        unsetenv("RNR_JSON_OUT");
        ckpt::CheckpointStore::instance().resetForTest();
        ckpt::resetInputForkForTest();
        ResultCache::instance().clearForTest();
        obs::MetricsRegistry::instance().resetForTest();
    }

    void
    TearDown() override
    {
        ckpt::CheckpointStore::instance().resetForTest();
        ckpt::resetInputForkForTest();
        unsetenv("RNR_CKPT_DIR");
        unsetenv("RNR_CKPT");
        fs::remove_all(root_);
    }

    /** >= 4 prefetcher configs sharing one workloadKey(). */
    static std::vector<ExperimentConfig>
    sharedWorkloadBatch()
    {
        std::vector<ExperimentConfig> cfgs;
        for (PrefetcherKind pf :
             {PrefetcherKind::None, PrefetcherKind::NextLine,
              PrefetcherKind::Stride, PrefetcherKind::Droplet,
              PrefetcherKind::Rnr}) {
            ExperimentConfig cfg;
            cfg.app = "pagerank";
            cfg.input = "urand";
            cfg.iterations = 2;
            cfg.cores = 2;
            cfg.prefetcher = pf;
            cfgs.push_back(cfg);
        }
        return cfgs;
    }

    static std::string
    fileBytes(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    static std::uint64_t
    metricValue(const std::string &name)
    {
        obs::Counter *c =
            obs::MetricsRegistry::instance().counter(name);
        return c ? c->value() : 0;
    }

    std::string root_;
};

TEST_F(ForkSweepTest, SweepWarmsUpOnceAndForksTheRest)
{
    const std::vector<ExperimentConfig> cfgs = sharedWorkloadBatch();
    ASSERT_GE(cfgs.size(), 4u);

    SweepOptions opts;
    opts.json_out = root_ + "/fork.json";
    opts.json_host = 0; // byte-comparable export
    const std::vector<ExperimentResult> results = runSweep(cfgs, opts);
    ASSERT_EQ(results.size(), cfgs.size());

    // Exactly one warm-up; every other cell forked it.
    ckpt::CheckpointStore &store = ckpt::CheckpointStore::instance();
    EXPECT_EQ(store.warmups(), 1u);
    EXPECT_EQ(store.forks(), cfgs.size() - 1);
    EXPECT_EQ(store.saves(), 1u); // the one published input snapshot

    // The metrics registry reconciles with the store counters.
    EXPECT_EQ(metricValue("rnr_ckpt_warmups_total"), store.warmups());
    EXPECT_EQ(metricValue("rnr_ckpt_forks_total"), store.forks());
    EXPECT_EQ(metricValue("rnr_ckpt_saves_total"), store.saves());
}

TEST_F(ForkSweepTest, ForkSweepJsonIsByteIdenticalToPlainSweep)
{
    const std::vector<ExperimentConfig> cfgs = sharedWorkloadBatch();

    SweepOptions fork_opts;
    fork_opts.json_out = root_ + "/fork.json";
    fork_opts.json_host = 0;
    (void)runSweep(cfgs, fork_opts);
    EXPECT_EQ(ckpt::CheckpointStore::instance().warmups(), 1u);

    // Plain sweep: store off, caches cleared so every cell really
    // simulates again.
    setenv("RNR_CKPT", "0", 1);
    ckpt::resetInputForkForTest();
    ResultCache::instance().clearForTest();
    SweepOptions plain_opts;
    plain_opts.json_out = root_ + "/plain.json";
    plain_opts.json_host = 0;
    (void)runSweep(cfgs, plain_opts);

    const std::string fork_json = fileBytes(root_ + "/fork.json");
    ASSERT_FALSE(fork_json.empty());
    EXPECT_EQ(fork_json, fileBytes(root_ + "/plain.json"));
}

TEST_F(ForkSweepTest, WarmProcessRerunDoesZeroWarmups)
{
    const std::vector<ExperimentConfig> cfgs = sharedWorkloadBatch();
    (void)runSweep(cfgs, SweepOptions{});
    ckpt::CheckpointStore &store = ckpt::CheckpointStore::instance();
    ASSERT_EQ(store.warmups(), 1u);

    // Second sweep in the same process: the memo (and failing that,
    // the published snapshot) serves every input — zero warm-ups.
    ResultCache::instance().clearForTest();
    (void)runSweep(cfgs, SweepOptions{});
    EXPECT_EQ(store.warmups(), 1u);
    EXPECT_EQ(store.forks(), 2 * cfgs.size() - 1);

    // Cold-memo rerun (a fresh farm worker): the snapshot alone
    // serves the input — still zero warm-ups.
    ckpt::resetInputForkForTest();
    ResultCache::instance().clearForTest();
    (void)runSweep(cfgs, SweepOptions{});
    EXPECT_EQ(store.warmups(), 1u);
    EXPECT_EQ(store.restores(), 0u); // input forks are not restores
}

TEST_F(ForkSweepTest, CorruptInputSnapshotRegeneratesBitIdentically)
{
    const std::vector<ExperimentConfig> cfgs = sharedWorkloadBatch();
    SweepOptions opts;
    opts.json_out = root_ + "/first.json";
    opts.json_host = 0;
    (void)runSweep(cfgs, opts);
    const std::string wkey = cfgs.front().workloadKey();
    const std::string snap =
        ckpt::CheckpointStore::snapshotPath(wkey, 0);
    ASSERT_TRUE(fs::exists(snap));

    // Corrupt the published input snapshot on disk.
    {
        std::ofstream out(snap, std::ios::binary | std::ios::trunc);
        out << "garbage";
    }
    // Fresh process state: memo cold, result cache cold.
    ckpt::resetInputForkForTest();
    ResultCache::instance().clearForTest();
    ckpt::CheckpointStore::instance().resetForTest();

    SweepOptions again;
    again.json_out = root_ + "/second.json";
    again.json_host = 0;
    (void)runSweep(cfgs, again);
    ckpt::CheckpointStore &store = ckpt::CheckpointStore::instance();
    EXPECT_GE(store.quarantines(), 1u);
    EXPECT_EQ(store.warmups(), 1u); // regenerated exactly once

    EXPECT_EQ(fileBytes(root_ + "/first.json"),
              fileBytes(root_ + "/second.json"));
}

} // namespace
} // namespace rnr
