/**
 * @file
 * CheckpointStore lifecycle tests: publish/hit, quarantine,
 * hash-collision-as-miss, abandon-promotes-a-waiter and single-flight
 * blocking across threads.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/ckpt_store.h"

namespace rnr {
namespace ckpt {
namespace {

namespace fs = std::filesystem;

class CkptStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("rnr_ckpt_store_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name())))
                    .string();
        fs::remove_all(root_);
        setenv("RNR_CKPT_DIR", root_.c_str(), 1);
        unsetenv("RNR_CKPT");
        CheckpointStore::instance().resetForTest();
    }

    void
    TearDown() override
    {
        CheckpointStore::instance().resetForTest();
        unsetenv("RNR_CKPT_DIR");
        fs::remove_all(root_);
    }

    /** A minimal valid snapshot for @p key at @p window carrying one
     *  recognisable payload value. */
    static std::vector<std::uint8_t>
    makeBlob(const std::string &key, std::uint64_t window,
             std::uint64_t payload)
    {
        SnapshotWriter w(SnapshotHeader{key, window ? key : "", window});
        w.section(window ? SectionId::System : SectionId::Input)
            .scalar(payload);
        return w.finish();
    }

    std::string root_;
};

TEST_F(CkptStoreTest, PublishThenHitRoundTrips)
{
    CheckpointStore &store = CheckpointStore::instance();
    std::vector<std::uint8_t> blob;
    ASSERT_EQ(store.acquire("key-a", 2, blob),
              CheckpointStore::Acquire::Owner);
    const std::vector<std::uint8_t> published = makeBlob("key-a", 2, 77);
    ASSERT_TRUE(store.publish("key-a", 2, published));
    EXPECT_EQ(store.saves(), 1u);
    // The production lock file is cleaned up after publish.
    EXPECT_FALSE(fs::exists(root_ + "/" + ckptHashName("key-a") +
                            ".w2.lock"));

    EXPECT_EQ(store.acquire("key-a", 2, blob),
              CheckpointStore::Acquire::Hit);
    EXPECT_EQ(blob, published);

    // Same key, different window: independent slot.
    ASSERT_EQ(store.acquire("key-a", 3, blob),
              CheckpointStore::Acquire::Owner);
    store.abandon("key-a", 3);
}

TEST_F(CkptStoreTest, TryLoadDoesNotTakeOwnership)
{
    CheckpointStore &store = CheckpointStore::instance();
    std::vector<std::uint8_t> blob;
    EXPECT_FALSE(store.tryLoad("key-b", 0, blob));

    ASSERT_EQ(store.acquire("key-b", 0, blob),
              CheckpointStore::Acquire::Owner);
    ASSERT_TRUE(store.publish("key-b", 0, makeBlob("key-b", 0, 5)));
    EXPECT_TRUE(store.tryLoad("key-b", 0, blob));
}

TEST_F(CkptStoreTest, CorruptSnapshotIsQuarantined)
{
    CheckpointStore &store = CheckpointStore::instance();
    std::vector<std::uint8_t> blob = makeBlob("key-c", 1, 9);
    blob[blob.size() / 2] ^= 0x01; // break the checksum
    ASSERT_TRUE(writeSnapshotFile(
                    CheckpointStore::snapshotPath("key-c", 1), blob)
                    .ok());

    std::vector<std::uint8_t> out;
    // The corrupt file reads as a miss (caller becomes Owner) and is
    // removed from disk.
    EXPECT_EQ(store.acquire("key-c", 1, out),
              CheckpointStore::Acquire::Owner);
    EXPECT_EQ(store.quarantines(), 1u);
    EXPECT_FALSE(
        fs::exists(CheckpointStore::snapshotPath("key-c", 1)));
    store.abandon("key-c", 1);
}

TEST_F(CkptStoreTest, HashCollisionReadsAsMissWithoutQuarantine)
{
    CheckpointStore &store = CheckpointStore::instance();
    // Plant another key's (valid) snapshot at key-d's slot path.
    ASSERT_TRUE(writeSnapshotFile(
                    CheckpointStore::snapshotPath("key-d", 1),
                    makeBlob("other-key", 1, 3))
                    .ok());

    std::vector<std::uint8_t> out;
    EXPECT_EQ(store.acquire("key-d", 1, out),
              CheckpointStore::Acquire::Owner);
    EXPECT_EQ(store.quarantines(), 0u);
    // The other key's snapshot was left intact.
    EXPECT_TRUE(fs::exists(CheckpointStore::snapshotPath("key-d", 1)));
    store.abandon("key-d", 1);
}

TEST_F(CkptStoreTest, SingleFlightBlocksWaitersUntilPublish)
{
    CheckpointStore &store = CheckpointStore::instance();
    std::vector<std::uint8_t> blob;
    ASSERT_EQ(store.acquire("key-e", 4, blob),
              CheckpointStore::Acquire::Owner);

    std::atomic<int> hits{0};
    std::vector<std::thread> waiters;
    for (int i = 0; i < 3; ++i)
        waiters.emplace_back([&] {
            std::vector<std::uint8_t> b;
            if (store.acquire("key-e", 4, b) ==
                CheckpointStore::Acquire::Hit)
                hits.fetch_add(1);
        });

    ASSERT_TRUE(store.publish("key-e", 4, makeBlob("key-e", 4, 1)));
    for (auto &t : waiters)
        t.join();
    EXPECT_EQ(hits.load(), 3); // everyone forked the one production
}

TEST_F(CkptStoreTest, AbandonPromotesAWaiter)
{
    CheckpointStore &store = CheckpointStore::instance();
    std::vector<std::uint8_t> blob;
    ASSERT_EQ(store.acquire("key-f", 1, blob),
              CheckpointStore::Acquire::Owner);

    std::atomic<bool> promoted{false};
    std::thread waiter([&] {
        std::vector<std::uint8_t> b;
        if (store.acquire("key-f", 1, b) ==
            CheckpointStore::Acquire::Owner) {
            promoted.store(true);
            store.abandon("key-f", 1);
        }
    });
    store.abandon("key-f", 1);
    waiter.join();
    EXPECT_TRUE(promoted.load());
}

TEST_F(CkptStoreTest, DisabledStoreIsHonoured)
{
    setenv("RNR_CKPT", "0", 1);
    EXPECT_FALSE(CheckpointStore::enabled());
    unsetenv("RNR_CKPT");
    EXPECT_TRUE(CheckpointStore::enabled());
    setenv("RNR_CKPT", "1", 1);
    EXPECT_TRUE(CheckpointStore::enabled());
    unsetenv("RNR_CKPT");
}

} // namespace
} // namespace ckpt
} // namespace rnr
