/**
 * @file
 * Exact-u64 archive tests: scalar encodings, containers, the
 * first-failure latch and the corrupt-count guard.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/serde.h"
#include "sim/types.h"

namespace rnr {
namespace ckpt {
namespace {

enum class Colour : std::uint8_t { Red = 1, Green = 2, Blue = 3 };

TEST(CkptSerde, ScalarsRoundTripThroughEightBytes)
{
    Ser s;
    std::uint64_t u = 0xdeadbeefcafef00dull;
    std::int32_t neg = -12345;
    double d = -3.25e-9;
    bool flag = true;
    Colour c = Colour::Green;
    Tick t = kTickMax;
    s.scalar(u);
    s.scalar(neg);
    s.scalar(d);
    s.scalar(flag);
    s.scalar(c);
    s.scalar(t);
    EXPECT_EQ(s.size(), 6u * 8u); // every scalar costs exactly 8 bytes

    Deser de(s.buffer());
    std::uint64_t u2 = 0;
    std::int32_t neg2 = 0;
    double d2 = 0;
    bool flag2 = false;
    Colour c2 = Colour::Red;
    Tick t2 = 0;
    de.scalar(u2);
    de.scalar(neg2);
    de.scalar(d2);
    de.scalar(flag2);
    de.scalar(c2);
    de.scalar(t2);
    EXPECT_TRUE(de.ok());
    EXPECT_EQ(de.remaining(), 0u);
    EXPECT_EQ(u2, u);
    EXPECT_EQ(neg2, neg);
    EXPECT_EQ(d2, d); // bit-copied, not rounded
    EXPECT_EQ(flag2, flag);
    EXPECT_EQ(c2, c);
    EXPECT_EQ(t2, t);
}

TEST(CkptSerde, LittleEndianWireOrder)
{
    Ser s;
    std::uint64_t v = 0x0102030405060708ull;
    s.scalar(v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(s.buffer()[0], 0x08); // least significant byte first
    EXPECT_EQ(s.buffer()[7], 0x01);
}

TEST(CkptSerde, PodAndStringRoundTrip)
{
    Ser s;
    std::vector<std::uint16_t> v = {1, 2, 65535};
    std::string name = "rnr-ckpt";
    s.pod(v);
    s.str(name);

    Deser de(s.buffer());
    std::vector<std::uint16_t> v2;
    std::string name2;
    de.pod(v2);
    de.str(name2);
    EXPECT_TRUE(de.ok());
    EXPECT_EQ(v2, v);
    EXPECT_EQ(name2, name);
}

struct Pair {
    std::uint64_t a = 0;
    std::uint32_t b = 0;

    template <class Ar>
    void
    visitState(Ar &ar)
    {
        ar.scalar(a);
        ar.scalar(b);
    }
};

TEST(CkptSerde, ContainersRoundTrip)
{
    Ser s;
    std::vector<Pair> pairs = {{1, 2}, {3, 4}};
    std::list<std::uint64_t> order = {9, 7, 5};
    std::unordered_map<std::uint64_t, std::uint64_t> m = {{1, 10},
                                                          {2, 20}};
    seq(s, pairs);
    scalarList(s, order);
    kvMap(s, m);

    Deser de(s.buffer());
    std::vector<Pair> pairs2;
    std::list<std::uint64_t> order2;
    std::unordered_map<std::uint64_t, std::uint64_t> m2;
    seq(de, pairs2);
    scalarList(de, order2);
    kvMap(de, m2);
    EXPECT_TRUE(de.ok());
    ASSERT_EQ(pairs2.size(), 2u);
    EXPECT_EQ(pairs2[1].a, 3u);
    EXPECT_EQ(pairs2[1].b, 4u);
    EXPECT_EQ(order2, order);
    EXPECT_EQ(m2, m);
}

TEST(CkptSerde, TruncationLatchesFirstFailure)
{
    Ser s;
    std::uint64_t v = 7;
    s.scalar(v);

    Deser de(s.buffer().data(), 4); // half a scalar
    std::uint64_t v2 = 99;
    de.scalar(v2);
    EXPECT_FALSE(de.ok());
    EXPECT_EQ(v2, 0u); // failed reads yield zeros, never garbage
    const std::string first = de.error();
    de.scalar(v2); // later reads keep the first error
    EXPECT_EQ(de.error(), first);
    EXPECT_EQ(de.result().status, CkptIoStatus::Truncated);
}

TEST(CkptSerde, CorruptCountCannotOverAllocate)
{
    // A seq whose element count claims more data than the archive
    // holds must fail cleanly instead of allocating or spinning.
    Ser s;
    std::uint64_t huge = ~std::uint64_t{0};
    s.scalar(huge);

    Deser de(s.buffer());
    std::vector<Pair> v;
    seq(de, v);
    EXPECT_FALSE(de.ok());
    EXPECT_TRUE(v.empty());

    Deser de2(s.buffer());
    std::unordered_map<std::uint64_t, std::uint64_t> m;
    kvMap(de2, m);
    EXPECT_FALSE(de2.ok());
    EXPECT_TRUE(m.empty());
}

TEST(CkptSerde, StatusNamesAreStable)
{
    EXPECT_STREQ(toString(CkptIoStatus::Ok), "ok");
    EXPECT_STREQ(toString(CkptIoStatus::BadChecksum), "bad-checksum");
    EXPECT_STREQ(toString(CkptIoStatus::KeyMismatch), "key-mismatch");
    const CkptIoResult r =
        CkptIoResult::fail(CkptIoStatus::Truncated, "at byte 12");
    EXPECT_EQ(r.message(), "truncated: at byte 12");
}

} // namespace
} // namespace ckpt
} // namespace rnr
