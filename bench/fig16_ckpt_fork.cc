/**
 * @file
 * Fig 16 (extension): checkpoint-fork sweep speedup.  A sweep over N
 * prefetcher configs sharing one workloadKey() pays the input warm-up
 * once and forks it into every other cell (src/ckpt/); this harness
 * times that against a plain sweep where every cell generates its
 * input natively, and prints the warm-up/fork accounting alongside.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ckpt/ckpt_store.h"
#include "ckpt/input_fork.h"
#include "harness/result_cache.h"
#include "harness/sweep.h"

using namespace rnr;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<ExperimentConfig>
sharedWorkloadBatch(const char *input)
{
    std::vector<ExperimentConfig> cfgs;
    for (PrefetcherKind pf :
         {PrefetcherKind::None, PrefetcherKind::NextLine,
          PrefetcherKind::Stride, PrefetcherKind::Ghb,
          PrefetcherKind::Droplet, PrefetcherKind::Rnr,
          PrefetcherKind::RnrCombined}) {
        ExperimentConfig cfg;
        cfg.app = "pagerank";
        cfg.input = input;
        cfg.prefetcher = pf;
        cfgs.push_back(cfg);
    }
    return cfgs;
}

double
timedSweep(const std::vector<ExperimentConfig> &cfgs)
{
    ResultCache::instance().clearForTest();
    ckpt::resetInputForkForTest();
    const auto start = Clock::now();
    SweepOptions opts;
    opts.progress = 0;
    (void)runSweep(cfgs, opts);
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main()
{
    // Honest timing: no result/trace reuse between the two variants.
    setenv("RNR_CACHE", "0", 1);
    setenv("RNR_TRACE_STORE", "0", 1);

    std::printf("== Fig 16: checkpoint-fork sweep speedup ==\n\n");
    std::printf("%-12s %8s %12s %12s %10s %8s\n", "input", "cells",
                "plain (s)", "fork (s)", "warm-ups", "speedup");

    for (const char *input : {"urand", "amazon"}) {
        const std::vector<ExperimentConfig> cfgs =
            sharedWorkloadBatch(input);

        setenv("RNR_CKPT", "0", 1);
        const double plain = timedSweep(cfgs);

        setenv("RNR_CKPT", "1", 1);
        ckpt::CheckpointStore::instance().resetForTest();
        const double forked = timedSweep(cfgs);
        const ckpt::CheckpointStore &store =
            ckpt::CheckpointStore::instance();

        std::printf("%-12s %8zu %12.2f %12.2f %7llu+%llu %7.2fx\n",
                    input, cfgs.size(), plain, forked,
                    static_cast<unsigned long long>(store.warmups()),
                    static_cast<unsigned long long>(store.forks()),
                    forked > 0 ? plain / forked : 0.0);
    }

    std::printf("\nThe fork sweep generates each shared input once "
                "(warm-ups column: generated+forked) and its results "
                "are byte-identical to the plain sweep's "
                "(tests/ckpt/fork_sweep_test.cc).\n");
    return 0;
}
