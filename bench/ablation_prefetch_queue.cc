/**
 * @file
 * Design-choice ablation: the L2 prefetch queue depth.
 *
 * RnR's replay lookahead is ultimately bounded by how many prefetches
 * can be in flight (the paper's window control assumes the hardware can
 * keep a window moving).  This sweep shows the knee: below ~8 entries
 * the replay cannot stay ahead of the demand stream and the speedup
 * collapses toward the no-prefetcher baseline; beyond ~32 the DRAM
 * banks are the binding resource and extra entries stop helping.
 */
#include <cstdio>

#include "bench_util.h"
#include "cpu/system.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

using namespace rnr;
using namespace rnr::bench;

namespace {

Tick
steadyCycles(unsigned pq, PrefetcherKind kind)
{
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.l2.prefetch_queue = pq;
    System sys(mcfg);

    WorkloadOptions opts;
    opts.cores = 4;
    PageRankWorkload wl(makeGraphInput("urand").graph, opts);
    std::vector<std::unique_ptr<Prefetcher>> pfs;
    for (unsigned c = 0; c < 4; ++c) {
        pfs.push_back(createPrefetcher(kind));
        sys.mem().setPrefetcher(c, pfs.back().get());
    }
    Tick last = 0;
    std::vector<TraceBuffer> bufs(4);
    for (unsigned it = 0; it < 3; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl.emitIteration(it, it == 2, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        last = sys.run(ptrs).cycles();
    }
    return last;
}

} // namespace

int
main()
{
    printHeader("Ablation", "L2 prefetch-queue depth (PageRank/urand)");

    const Tick base = steadyCycles(32, PrefetcherKind::None);
    std::printf("baseline steady iteration: %llu cycles\n\n",
                static_cast<unsigned long long>(base));
    std::printf("%-8s %14s %10s\n", "PQ", "rnr-combined", "speedup");
    for (unsigned pq : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const Tick t = steadyCycles(pq, PrefetcherKind::RnrCombined);
        std::printf("%-8u %14llu %9.2fx\n", pq,
                    static_cast<unsigned long long>(t),
                    static_cast<double>(base) / t);
    }
    return 0;
}
