/**
 * @file
 * Extension experiment: RnR on the other repeating-irregular
 * applications the paper's introduction motivates — label-propagation
 * community detection [31] and a Jacobi iterative solver — plus the
 * two extra baselines from related work (Domino [8] and IMP [60]).
 *
 * This goes beyond the paper's evaluation set; it checks that the RnR
 * mechanism generalises exactly as Section II argues it should: any
 * kernel whose irregular access sequence repeats across iterations
 * benefits, whether the target array is updated in place (labelprop)
 * or swapped per iteration (jacobi).
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Extension");
    printHeader("Extension", "RnR on label propagation and Jacobi");

    const std::vector<WorkloadRef> workloads = {
        {"labelprop", "urand"},   {"labelprop", "amazon"},
        {"labelprop", "roadUSA"}, {"jacobi", "bbmat"},
        {"jacobi", "nlpkkt80"},   {"jacobi", "pdb1HYS"},
    };
    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::Stream, PrefetcherKind::Ghb,
        PrefetcherKind::Domino, PrefetcherKind::Imp,
        PrefetcherKind::Rnr,    PrefetcherKind::RnrCombined,
    };

    std::vector<ExperimentConfig> cells;
    for (const WorkloadRef &w : workloads) {
        cells.push_back(makeConfig(w, PrefetcherKind::None));
        for (PrefetcherKind k : kinds)
            cells.push_back(makeConfig(w, k));
    }
    precompute(cells, opts);

    std::vector<std::string> heads;
    for (PrefetcherKind k : kinds)
        heads.push_back(toString(k));
    printColumnHeads(heads);

    for (const WorkloadRef &w : workloads) {
        const ExperimentResult base =
            runExperiment(makeConfig(w, PrefetcherKind::None));
        std::vector<double> row;
        for (PrefetcherKind k : kinds)
            row.push_back(speedup(runExperiment(makeConfig(w, k)), base));
        printRow(w.label(), row);
    }

    std::printf("\nAccuracy/coverage of RnR on the extension apps:\n");
    for (const WorkloadRef &w : workloads) {
        const ExperimentResult base =
            runExperiment(makeConfig(w, PrefetcherKind::None));
        const ExperimentResult r =
            runExperiment(makeConfig(w, PrefetcherKind::Rnr));
        std::printf("  %-20s acc=%.1f%% cov=%.1f%% storage=%.1f%%\n",
                    w.label().c_str(), accuracy(r) * 100,
                    coverage(r, base) * 100, storageOverhead(r) * 100);
    }
    return 0;
}
