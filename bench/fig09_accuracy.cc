/**
 * @file
 * Regenerates Fig 9: prefetch accuracy (useful over issued) per
 * workload and prefetcher.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 9");
    printHeader("Fig 9", "Prefetcher accuracy (useful / issued)");

    precompute(figureMatrix(/*with_baseline=*/false), opts);

    const auto kinds = figurePrefetchers();
    std::vector<std::string> heads;
    for (PrefetcherKind k : kinds)
        heads.push_back(toString(k));
    printColumnHeads(heads);

    std::map<std::string, std::vector<double>> rnr_acc;
    for (const WorkloadRef &w : allWorkloads()) {
        std::vector<double> row;
        for (PrefetcherKind k : kinds) {
            if (!applicable(k, w)) {
                row.push_back(0.0);
                continue;
            }
            const double a = accuracy(runExperiment(makeConfig(w, k)));
            row.push_back(a);
            if (k == PrefetcherKind::Rnr)
                rnr_acc[w.app].push_back(a);
        }
        printRow(w.label(), row);
    }
    std::printf("\nRnR accuracy geomeans:");
    for (const auto &[app, v] : rnr_acc)
        std::printf("  %s=%.1f%%", app.c_str(), geomean(v) * 100);
    std::printf("\nPaper reference: RnR averages 97.18%% accuracy.\n");
    return 0;
}
