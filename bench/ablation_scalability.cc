/**
 * @file
 * Section V-E ablation: how RnR's costs scale with core count.
 *
 * The paper argues (1) hardware overhead grows linearly (per-core
 * registers), and (2) total metadata storage does not grow much with
 * cores because partitioning keeps each worker on its own slice.  This
 * bench sweeps 1/2/4/8 cores on PageRank and reports per-core and
 * total metadata, speedup, and the per-core hardware bytes.
 */
#include "bench_util.h"

#include "core/rnr_hw_model.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts =
        parseBenchArgs(argc, argv, "Ablation V-E");
    printHeader("Ablation (Section V-E)", "Core-count scalability");

    std::vector<ExperimentConfig> cells;
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        ExperimentConfig cfg;
        cfg.app = "pagerank";
        cfg.input = "amazon";
        cfg.cores = cores;
        cells.push_back(cfg); // the no-prefetcher baseline
        cfg.prefetcher = PrefetcherKind::Rnr;
        cells.push_back(cfg);
    }
    precompute(cells, opts);

    const RnrHwCost hw = computeRnrHwCost();
    std::printf("per-core hardware state: %llu B (grows linearly with "
                "cores)\n\n",
                static_cast<unsigned long long>(hw.total_bytes));

    std::printf("%-7s %10s %14s %14s %10s\n", "cores", "speedup",
                "seq bytes", "bytes/core", "storage%");
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        ExperimentConfig cfg;
        cfg.app = "pagerank";
        cfg.input = "amazon";
        cfg.cores = cores;
        const ExperimentResult base = runBaseline(cfg);
        cfg.prefetcher = PrefetcherKind::Rnr;
        const ExperimentResult r = runExperiment(cfg);
        std::printf("%-7u %9.2fx %14llu %14llu %9.2f%%\n", cores,
                    speedup(r, base),
                    static_cast<unsigned long long>(r.seq_table_bytes),
                    static_cast<unsigned long long>(r.seq_table_bytes /
                                                    cores),
                    storageOverhead(r) * 100);
    }
    std::printf("\nPaper reference: register overhead is linear in "
                "cores and negligible; total metadata stays roughly "
                "flat because partitioned workers record only their own "
                "partition's misses.\n");
    return 0;
}
