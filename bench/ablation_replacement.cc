/**
 * @file
 * Design-choice ablation: L2 replacement policy (LRU vs SRRIP).
 *
 * Section III places prefetched data in the private L2, citing
 * DROPLET's "negligible cache pollution" observation.  This ablation
 * probes how policy-sensitive that choice is: SRRIP protects proven-
 * reuse lines from the edge/CSR scans, which changes the baseline more
 * than it changes RnR (whose replay re-fills the L2 continuously and
 * whose accuracy barely depends on the victim choice).
 */
#include <cstdio>

#include "bench_util.h"
#include "cpu/system.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

using namespace rnr;
using namespace rnr::bench;

namespace {

struct Outcome {
    Tick steady = 0;
    double accuracy = 0;
};

Outcome
runWith(ReplacementPolicy policy, PrefetcherKind kind,
        const std::string &input)
{
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.l2.replacement = policy;
    mcfg.llc.replacement = policy;
    System sys(mcfg);

    WorkloadOptions opts;
    opts.cores = 4;
    PageRankWorkload wl(makeGraphInput(input).graph, opts);
    std::vector<std::unique_ptr<Prefetcher>> pfs;
    for (unsigned c = 0; c < 4; ++c) {
        pfs.push_back(createPrefetcher(kind));
        sys.mem().setPrefetcher(c, pfs.back().get());
    }
    Outcome out;
    std::vector<TraceBuffer> bufs(4);
    for (unsigned it = 0; it < 3; ++it) {
        for (auto &b : bufs)
            b.clear();
        wl.emitIteration(it, it == 2, bufs);
        std::vector<const TraceBuffer *> ptrs;
        for (auto &b : bufs)
            ptrs.push_back(&b);
        out.steady = sys.run(ptrs).cycles();
    }
    std::uint64_t useful = 0, issued = 0;
    for (unsigned c = 0; c < 4; ++c) {
        const StatGroup &s = sys.mem().l2(c).stats();
        useful += s.get("prefetch_useful") +
                  s.get("demand_merged_into_prefetch");
        issued += s.get("prefetches_issued");
    }
    out.accuracy = issued ? static_cast<double>(useful) / issued : 0.0;
    return out;
}

} // namespace

int
main()
{
    printHeader("Ablation", "L2/LLC replacement policy (PageRank)");

    std::printf("%-10s %-8s %14s %14s %9s\n", "input", "policy",
                "baseline cyc", "rnr-comb cyc", "rnr acc");
    for (const char *input : {"urand", "amazon"}) {
        for (ReplacementPolicy p :
             {ReplacementPolicy::Lru, ReplacementPolicy::Srrip}) {
            const Outcome base =
                runWith(p, PrefetcherKind::None, input);
            const Outcome rnr =
                runWith(p, PrefetcherKind::RnrCombined, input);
            std::printf("%-10s %-8s %14llu %14llu %8.1f%%  (%.2fx)\n",
                        input,
                        p == ReplacementPolicy::Lru ? "LRU" : "SRRIP",
                        static_cast<unsigned long long>(base.steady),
                        static_cast<unsigned long long>(rnr.steady),
                        rnr.accuracy * 100,
                        static_cast<double>(base.steady) / rnr.steady);
        }
    }
    return 0;
}
