/**
 * @file
 * Regenerates Fig 11: the prefetch timeliness breakdown (on-time,
 * early, late, out-of-window) of RnR replay under no control, window
 * control, and window+pace control.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 11");
    printHeader("Fig 11", "Prefetch timeliness breakdown (percent)");

    precompute(controlMatrix(/*with_baseline=*/false), opts);

    std::printf("%-20s %-9s %8s %8s %8s %8s\n", "workload", "control",
                "ontime", "early", "late", "out-win");
    for (const WorkloadRef &w : allWorkloads()) {
        for (ReplayControlMode mode :
             {ReplayControlMode::None, ReplayControlMode::Window,
              ReplayControlMode::WindowPace}) {
            ExperimentConfig cfg = makeConfig(w, PrefetcherKind::Rnr);
            cfg.control = mode;
            const TimelinessBreakdown b =
                timeliness(runExperiment(cfg));
            const char *name =
                mode == ReplayControlMode::None
                    ? "none"
                    : (mode == ReplayControlMode::Window ? "window"
                                                         : "win+pace");
            std::printf("%-20s %-9s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                        w.label().c_str(), name, b.ontime * 100,
                        b.early * 100, b.late * 100,
                        b.out_of_window * 100);
        }
    }
    std::printf("\nPaper reference: with window control most workloads "
                "are fully on time; urand shows 7-8%% early/late; pace "
                "control trims early prefetches a few percent.\n");
    return 0;
}
