/**
 * @file
 * Shared plumbing for the per-figure bench binaries: the evaluation
 * matrix (Section VI's workloads x inputs), the prefetcher line-up of
 * the figures, and table-printing helpers.
 *
 * Results are cached in rnr_results.cache (see harness/runner.h), so
 * the first bench to touch a cell simulates it and the rest reuse it.
 */
#ifndef RNR_BENCH_BENCH_UTIL_H
#define RNR_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "harness/metrics.h"
#include "harness/runner.h"
#include "sim/config.h"

namespace rnr::bench {

/** One workload/input cell of the evaluation matrix. */
struct WorkloadRef {
    std::string app;
    std::string input;

    std::string
    label() const
    {
        return app + "/" + input;
    }
};

/** Every workload/input pair of the paper's evaluation. */
inline std::vector<WorkloadRef>
allWorkloads()
{
    std::vector<WorkloadRef> out;
    for (const char *in : {"urand", "amazon", "com-orkut", "roadUSA"}) {
        out.push_back({"pagerank", in});
        out.push_back({"hyperanf", in});
    }
    for (const char *in : {"atmosmodj", "bbmat", "nlpkkt80", "pdb1HYS"})
        out.push_back({"spcg", in});
    return out;
}

/** The prefetcher line-up of Figs 6-9/12 (DROPLET skips spCG). */
inline std::vector<PrefetcherKind>
figurePrefetchers()
{
    return {PrefetcherKind::NextLine, PrefetcherKind::Bingo,
            PrefetcherKind::Stems,    PrefetcherKind::Misb,
            PrefetcherKind::Droplet,  PrefetcherKind::Rnr,
            PrefetcherKind::RnrCombined};
}

inline bool
applicable(PrefetcherKind kind, const WorkloadRef &w)
{
    // "Since DROPLET is designed for graph algorithms, the evaluation
    // results do not include DROPLET when running spCG."
    return !(kind == PrefetcherKind::Droplet && w.app == "spcg");
}

inline ExperimentConfig
makeConfig(const WorkloadRef &w, PrefetcherKind kind)
{
    ExperimentConfig cfg;
    cfg.app = w.app;
    cfg.input = w.input;
    cfg.prefetcher = kind;
    return cfg;
}

/** Prints the standard bench banner with the machine description. */
inline void
printHeader(const std::string &figure, const std::string &what)
{
    std::printf("================================================\n");
    std::printf("%s — %s\n", figure.c_str(), what.c_str());
    std::printf("Scaled machine (see DESIGN.md section 4):\n%s\n",
                MachineConfig::scaledDefault().describe().c_str());
    std::printf("Paper machine (Table II) for reference:\n%s\n",
                MachineConfig::paperBaseline().describe().c_str());
    std::printf("================================================\n\n");
}

/** Prints one row of a (workload x prefetcher) metric table. */
inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *fmt = "%13.2f")
{
    std::printf("%-20s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
printColumnHeads(const std::vector<std::string> &heads)
{
    std::printf("%-20s", "workload");
    for (const auto &h : heads)
        std::printf("%13s", h.c_str());
    std::printf("\n");
}

} // namespace rnr::bench

#endif // RNR_BENCH_BENCH_UTIL_H
