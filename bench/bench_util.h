/**
 * @file
 * Shared plumbing for the per-figure bench binaries: the evaluation
 * matrix (Section VI's workloads x inputs), the prefetcher line-up of
 * the figures, sweep/CLI plumbing and table-printing helpers.
 *
 * Each bench enumerates its full matrix up front and hands it to the
 * parallel SweepRunner (harness/sweep.h), which fills the shared result
 * cache (rnr_results.cache) on every core; the print loops then read
 * the warm cache.  Shared flags, parsed by parseBenchArgs():
 *
 *   --jobs <n>        thread-pool width        (or RNR_JOBS=<n>)
 *   --json <path>     structured result export (or RNR_JSON_OUT=<path>)
 *   --quiet           silence progress         (or RNR_PROGRESS=0)
 *   --trace-dir <p>   trace-store corpus dir   (or RNR_TRACE_DIR=<p>)
 *   --farm <socket>   run cells on a rnr_farmd (or RNR_FARM=<socket>)
 *
 * This header also hosts the bench-regression gate
 * (`micro_hotpath compare`, benchCompareMain below): it loads two
 * benchmark JSON files — google-benchmark's --benchmark_out format or
 * the committed rnr-hotpath-v1 trajectory file — and exits non-zero
 * when any common benchmark's items_per_second regressed by more than
 * the threshold.  CI runs it against BENCH_hotpath.json.
 *
 * See docs/HARNESS.md for the full pipeline walkthrough.
 */
#ifndef RNR_BENCH_BENCH_UTIL_H
#define RNR_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/json_parse.h"
#include "harness/metrics.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "sim/config.h"

namespace rnr::bench {

/** One workload/input cell of the evaluation matrix. */
struct WorkloadRef {
    std::string app;
    std::string input;

    std::string
    label() const
    {
        return app + "/" + input;
    }
};

/** Every workload/input pair of the paper's evaluation. */
inline std::vector<WorkloadRef>
allWorkloads()
{
    std::vector<WorkloadRef> out;
    for (const char *in : {"urand", "amazon", "com-orkut", "roadUSA"}) {
        out.push_back({"pagerank", in});
        out.push_back({"hyperanf", in});
    }
    for (const char *in : {"atmosmodj", "bbmat", "nlpkkt80", "pdb1HYS"})
        out.push_back({"spcg", in});
    return out;
}

/** The prefetcher line-up of Figs 6-9/12 (DROPLET skips spCG). */
inline std::vector<PrefetcherKind>
figurePrefetchers()
{
    return {PrefetcherKind::NextLine, PrefetcherKind::Bingo,
            PrefetcherKind::Stems,    PrefetcherKind::Misb,
            PrefetcherKind::Droplet,  PrefetcherKind::Rnr,
            PrefetcherKind::RnrCombined};
}

inline bool
applicable(PrefetcherKind kind, const WorkloadRef &w)
{
    // "Since DROPLET is designed for graph algorithms, the evaluation
    // results do not include DROPLET when running spCG."
    return !(kind == PrefetcherKind::Droplet && w.app == "spcg");
}

inline ExperimentConfig
makeConfig(const WorkloadRef &w, PrefetcherKind kind)
{
    ExperimentConfig cfg;
    cfg.app = w.app;
    cfg.input = w.input;
    cfg.prefetcher = kind;
    return cfg;
}

/** Points the trace store at @p path for the rest of the process
 *  (the CLI spelling of RNR_TRACE_DIR). */
inline void
setTraceDir(const std::string &path)
{
#ifdef _WIN32
    _putenv_s("RNR_TRACE_DIR", path.c_str());
#else
    setenv("RNR_TRACE_DIR", path.c_str(), 1);
#endif
}

/**
 * Parses the flags shared by every bench binary (--jobs, --json,
 * --trace-dir, --quiet; see the file header) into SweepOptions
 * labelled @p label.  Unknown flags print usage and exit so typos
 * don't silently run the full matrix.
 */
inline SweepOptions
parseBenchArgs(int argc, char **argv, const std::string &label)
{
    SweepOptions opts;
    opts.label = label;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quiet") {
            opts.progress = 0;
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            opts.json_out = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.json_out = arg.substr(7);
        } else if (arg == "--trace-dir" && i + 1 < argc) {
            setTraceDir(argv[++i]);
        } else if (arg.rfind("--trace-dir=", 0) == 0) {
            setTraceDir(arg.substr(12));
        } else if (arg == "--farm" && i + 1 < argc) {
            opts.farm = argv[++i];
        } else if (arg.rfind("--farm=", 0) == 0) {
            opts.farm = arg.substr(7);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--jobs <n>] [--json <path>] "
                         "[--trace-dir <path>] [--farm <socket>] "
                         "[--quiet]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

/**
 * Runs @p cells on the thread pool, warming the in-process result
 * cache so the figure's print loops below are pure lookups.  Also the
 * point where --json / RNR_JSON_OUT exports the batch.
 */
inline void
precompute(const std::vector<ExperimentConfig> &cells,
           const SweepOptions &opts)
{
    runSweep(cells, opts);
}

/** The standard figure matrix: baseline + line-up per workload. */
inline std::vector<ExperimentConfig>
figureMatrix(bool with_baseline = true, bool with_ideal = false)
{
    std::vector<ExperimentConfig> cells;
    for (const WorkloadRef &w : allWorkloads()) {
        if (with_baseline)
            cells.push_back(makeConfig(w, PrefetcherKind::None));
        for (PrefetcherKind k : figurePrefetchers()) {
            if (applicable(k, w))
                cells.push_back(makeConfig(w, k));
        }
        if (with_ideal) {
            ExperimentConfig ideal = makeConfig(w, PrefetcherKind::None);
            ideal.ideal_llc = true;
            cells.push_back(ideal);
        }
    }
    return cells;
}

/** RnR under each replay-control mode (+ optional baselines). */
inline std::vector<ExperimentConfig>
controlMatrix(bool with_baseline)
{
    std::vector<ExperimentConfig> cells;
    for (const WorkloadRef &w : allWorkloads()) {
        if (with_baseline)
            cells.push_back(makeConfig(w, PrefetcherKind::None));
        for (ReplayControlMode mode :
             {ReplayControlMode::None, ReplayControlMode::Window,
              ReplayControlMode::WindowPace}) {
            ExperimentConfig cfg = makeConfig(w, PrefetcherKind::Rnr);
            cfg.control = mode;
            cells.push_back(cfg);
        }
    }
    return cells;
}

/** Prints the standard bench banner with the machine description. */
inline void
printHeader(const std::string &figure, const std::string &what)
{
    std::printf("================================================\n");
    std::printf("%s — %s\n", figure.c_str(), what.c_str());
    std::printf("Scaled machine (see DESIGN.md section 4):\n%s\n",
                MachineConfig::scaledDefault().describe().c_str());
    std::printf("Paper machine (Table II) for reference:\n%s\n",
                MachineConfig::paperBaseline().describe().c_str());
    std::printf("================================================\n\n");
}

/** Prints one row of a (workload x prefetcher) metric table. */
inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *fmt = "%13.2f")
{
    std::printf("%-20s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
printColumnHeads(const std::vector<std::string> &heads)
{
    std::printf("%-20s", "workload");
    for (const auto &h : heads)
        std::printf("%13s", h.c_str());
    std::printf("\n");
}

// ---- Bench-regression gate (`micro_hotpath compare`) ----

/**
 * Extracts benchmark-name -> items_per_second from @p doc.  Understands
 * two shapes:
 *  - google-benchmark --benchmark_out: {"benchmarks": [{"name": ...,
 *    "items_per_second": ...}, ...]} (aggregate entries like
 *    "name/mean" are taken verbatim; callers compare like with like);
 *  - the committed trajectory file (rnr-hotpath-v1): {"results":
 *    {"<name>": {"after": {"items_per_second": ...}}}} — "after" is the
 *    file's accepted state, which is what a gate compares against.
 */
inline std::map<std::string, double>
loadBenchRates(const JsonValue &doc)
{
    std::map<std::string, double> out;
    if (const JsonValue *benches = doc.find("benchmarks")) {
        for (const JsonValue &b : benches->items) {
            const JsonValue *name = b.find("name");
            const JsonValue *rate = b.find("items_per_second");
            if (name && rate && rate->asDouble() > 0)
                out[name->text] = rate->asDouble();
        }
    } else if (const JsonValue *results = doc.find("results")) {
        for (const auto &m : results->members) {
            const JsonValue *after = m.second.find("after");
            const JsonValue *rate =
                after ? after->find("items_per_second") : nullptr;
            if (rate && rate->asDouble() > 0)
                out[m.first] = rate->asDouble();
        }
    }
    return out;
}

/**
 * `compare <baseline.json> <current.json> [--max-regress <pct>]`:
 * exits 0 when every benchmark present in both files is within
 * @c max_regress percent of the baseline rate (default 15), 1 when any
 * regressed beyond it, 2 on usage/parse errors or no common benchmarks.
 * Faster-than-baseline results always pass (the gate is one-sided).
 */
inline int
benchCompareMain(int argc, char **argv)
{
    const char *base_path = nullptr;
    const char *cur_path = nullptr;
    double max_regress = 15.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--max-regress" && i + 1 < argc) {
            max_regress = std::strtod(argv[++i], nullptr);
        } else if (arg.rfind("--max-regress=", 0) == 0) {
            max_regress = std::strtod(arg.c_str() + 14, nullptr);
        } else if (!base_path) {
            base_path = argv[i];
        } else if (!cur_path) {
            cur_path = argv[i];
        } else {
            base_path = nullptr;
            break;
        }
    }
    if (!base_path || !cur_path) {
        std::fprintf(stderr,
                     "usage: compare <baseline.json> <current.json> "
                     "[--max-regress <pct>]\n");
        return 2;
    }

    JsonValue base_doc, cur_doc;
    std::string err;
    if (!parseJsonFile(base_path, base_doc, &err)) {
        std::fprintf(stderr, "compare: %s: %s\n", base_path,
                     err.c_str());
        return 2;
    }
    if (!parseJsonFile(cur_path, cur_doc, &err)) {
        std::fprintf(stderr, "compare: %s: %s\n", cur_path, err.c_str());
        return 2;
    }

    const std::map<std::string, double> base = loadBenchRates(base_doc);
    const std::map<std::string, double> cur = loadBenchRates(cur_doc);

    std::size_t common = 0;
    int failures = 0;
    for (const auto &b : base) {
        const auto it = cur.find(b.first);
        if (it == cur.end())
            continue;
        ++common;
        const double delta_pct =
            (b.second - it->second) / b.second * 100.0;
        const bool regressed = delta_pct > max_regress;
        std::fprintf(stderr,
                     "compare: %-28s %12.0f -> %12.0f items/s "
                     "(%+.1f%%)%s\n",
                     b.first.c_str(), b.second, it->second, -delta_pct,
                     regressed ? "  REGRESSION" : "");
        if (regressed)
            ++failures;
    }
    if (common == 0) {
        std::fprintf(stderr,
                     "compare: no common benchmarks between %s and %s\n",
                     base_path, cur_path);
        return 2;
    }
    if (failures) {
        std::fprintf(stderr,
                     "compare: %d of %zu benchmarks regressed more "
                     "than %.1f%%\n",
                     failures, common, max_regress);
        return 1;
    }
    std::fprintf(stderr,
                 "compare: all %zu benchmarks within %.1f%% of "
                 "baseline\n",
                 common, max_regress);
    return 0;
}

} // namespace rnr::bench

#endif // RNR_BENCH_BENCH_UTIL_H
