/**
 * @file
 * Regenerates Fig 12: additional off-chip traffic of each prefetcher
 * versus the no-prefetcher baseline, split into the paper's formula
 * TotalPrefetch x (1 - Accuracy) + MetadataTraffic for RnR/MISB.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 12");
    printHeader("Fig 12", "Additional off-chip traffic (percent)");

    precompute(figureMatrix(), opts);

    const auto kinds = figurePrefetchers();
    std::vector<std::string> heads;
    for (PrefetcherKind k : kinds)
        heads.push_back(toString(k));
    printColumnHeads(heads);

    std::map<std::string, std::vector<double>> per_kind;
    for (const WorkloadRef &w : allWorkloads()) {
        const ExperimentResult base =
            runExperiment(makeConfig(w, PrefetcherKind::None));
        std::vector<double> row;
        for (PrefetcherKind k : kinds) {
            if (!applicable(k, w)) {
                row.push_back(0.0);
                continue;
            }
            const double t =
                trafficOverhead(runExperiment(makeConfig(w, k)), base) *
                100;
            row.push_back(t);
            per_kind[toString(k)].push_back(t);
        }
        printRow(w.label(), row, "%13.1f");
    }

    std::printf("\n%-20s", "AVERAGE");
    for (PrefetcherKind k : kinds) {
        const auto &v = per_kind[toString(k)];
        double avg = 0;
        for (double x : v)
            avg += x;
        std::printf("%13.1f", v.empty() ? 0.0 : avg / v.size());
    }
    std::printf("\n\nMetadata share of RnR's extra traffic (steady "
                "iteration):\n");
    for (const WorkloadRef &w : allWorkloads()) {
        const ExperimentResult r =
            runExperiment(makeConfig(w, PrefetcherKind::Rnr));
        const double meta =
            static_cast<double>(r.steady().dram_bytes_metadata);
        const double total =
            static_cast<double>(r.steady().dram_bytes_total);
        std::printf("  %-20s %.1f%% of steady traffic is metadata\n",
                    w.label().c_str(), 100.0 * meta / total);
    }
    std::printf("\nPaper reference: next-line/bingo/SteMS/MISB/DROPLET/"
                "RnR/RnR-Combined add 45.2/67.1/58.4/19.7/12.2/12.0/"
                "27.6%% on average; metadata dominates RnR's extra "
                "traffic.\n");
    return 0;
}
