/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * simulator's hot paths, so regressions in simulation speed — which
 * gates how big an input the benches can afford — are visible.
 */
#include <benchmark/benchmark.h>

#include "cpu/system.h"
#include "mem/memory_system.h"
#include "sim/rng.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

namespace {

using namespace rnr;

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.name = "bench";
    cfg.size_bytes = 32 * 1024;
    cfg.ways = 8;
    Cache cache(cfg);
    Rng rng(1);
    Tick t = 0;
    for (auto _ : state) {
        const Addr block = rng.below(4096);
        if (!cache.access(block, t))
            cache.insert(block, t, false, false);
        ++t;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DramRead(benchmark::State &state)
{
    Dram dram(DramConfig{});
    Rng rng(2);
    Tick t = 0;
    for (auto _ : state) {
        dram.read(rng.below(1 << 26) * kBlockSize, t, ReqOrigin::Demand);
        t += 10;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRead);

void
BM_DemandAccessFullPath(benchmark::State &state)
{
    MemorySystem ms(MachineConfig::scaledDefault());
    Rng rng(3);
    Tick t = 0;
    for (auto _ : state) {
        ms.demandAccess(0, 0x10000000 + rng.below(1 << 22), false, 1, t);
        t += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DemandAccessFullPath);

void
BM_TraceEmission(benchmark::State &state)
{
    TraceBuffer buf;
    Tracer tracer(&buf);
    Addr a = 0x10000000;
    for (auto _ : state) {
        tracer.instr(3);
        tracer.load(a, 7);
        a += 8;
        if (buf.size() > (1u << 20)) {
            buf.clear();
            tracer.retarget(&buf);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmission);

void
BM_CoreStepThroughput(benchmark::State &state)
{
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    // Pre-build one PageRank iteration trace and re-run it.
    WorkloadOptions opts;
    opts.cores = 1;
    PageRankWorkload wl(makeUrandGraph(4096, 8, 13), opts);
    std::vector<TraceBuffer> bufs(1);
    wl.emitIteration(0, false, bufs);

    System sys(mcfg);
    std::uint64_t records = 0;
    for (auto _ : state) {
        std::vector<const TraceBuffer *> ptrs = {&bufs[0]};
        sys.run(ptrs);
        records += bufs[0].size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_CoreStepThroughput)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
