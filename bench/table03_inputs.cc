/**
 * @file
 * Regenerates Table III: the workload inputs with their scaled sizes
 * and key characteristics, plus the METIS-equivalent partition quality
 * that Section VI's SPMD setup depends on.
 */
#include <cstdio>

#include "bench_util.h"
#include "workloads/graph_gen.h"
#include "workloads/partition.h"
#include "workloads/sparse_gen.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    // Table III characterises the inputs themselves — no simulation
    // matrix — but it accepts the shared flags for CLI uniformity.
    (void)parseBenchArgs(argc, argv, "Table III");
    printHeader("Table III", "Evaluated inputs (scaled stand-ins)");

    std::printf("Graphs (4-way partitioned as in Section VI):\n");
    std::printf("%-12s %10s %12s %10s %10s %9s\n", "graph", "vertices",
                "edges", "avg deg", "bytes", "edge cut");
    for (const std::string &name : graphInputNames()) {
        const GraphInput in = makeGraphInput(name);
        const Partitioning p = partitionGraph(in.graph, 4);
        std::printf("%-12s %10u %12llu %10.1f %9.1fMB %8.1f%%\n",
                    name.c_str(), in.graph.num_vertices,
                    static_cast<unsigned long long>(in.graph.numEdges()),
                    static_cast<double>(in.graph.numEdges()) /
                        in.graph.num_vertices,
                    in.graph.bytes() / 1e6,
                    p.edgeCut(in.graph) * 100);
    }

    std::printf("\nSparse matrices (SPD, CSR):\n");
    std::printf("%-12s %10s %12s %10s %10s\n", "matrix", "n", "nnz",
                "nnz/row", "bytes");
    for (const std::string &name : matrixInputNames()) {
        const MatrixInput in = makeMatrixInput(name);
        std::printf("%-12s %10u %12llu %10.1f %9.1fMB\n", name.c_str(),
                    in.matrix.n,
                    static_cast<unsigned long long>(in.matrix.nnz()),
                    static_cast<double>(in.matrix.nnz()) / in.matrix.n,
                    in.matrix.bytes() / 1e6);
    }
    std::printf("\nSee DESIGN.md 'Substitutions' for how each stand-in "
                "mirrors its Table III namesake.\n");
    return 0;
}
