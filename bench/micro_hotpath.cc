/**
 * @file
 * Hot-path microbenchmark: simulated mem-ops/s through
 * MemorySystem::demandAccess.
 *
 * Replays a recorded PageRank/urand trace slice (the paper's
 * worst-locality input) straight into the memory system, bypassing the
 * core model, so the measured rate isolates the cache/MSHR/DRAM/stats
 * bookkeeping that every simulated access pays.  This is the repo's
 * committed perf trajectory point: CI runs it in Release mode and
 * uploads BENCH_hotpath.json, and the before/after numbers of each
 * accepted optimisation live in the checked-in copy of that file.
 *
 * Variants:
 *  - none:    no prefetcher — the floor every other config builds on.
 *  - stream:  stream prefetcher attached — adds the Prefetcher::onAccess
 *             and issuePrefetch counter paths to the measurement.
 *  - sampled: like none but with a live TelemetrySampler attached and
 *             offered the clock per op — the *enabled* sampling cost
 *             (the disabled cost is what none measures, since the
 *             telemetry hooks are always compiled in; the A/B lives in
 *             BENCH_telemetry.json).
 *
 * BM_DemandAccessObsGated is the observability-off A/B partner of
 * none: the identical loop with a disabled metrics-registry gate per
 * op (the nullptr a call site holds under RNR_METRICS=0) and a
 * below-threshold logEnabled() check per sweep — the exact shapes the
 * instrumented sites in src/harness and src/farm have, at the
 * granularities they really run at.  Its rate must stay within noise
 * of none (docs/HARNESS.md §16); CI asserts the parity and the
 * compare gate pins both.  BM_DemandAccessAttribGated is the same
 * contract for the attribution layer (docs/HARNESS.md §18): the loop
 * with attachAttrib(nullptr) and a per-op null-collector gate, the
 * shape every cache/memory-system hook has when RNR_ATTRIB is off.
 *
 * BM_Kernel/{batched,legacy} measure the full stack instead — trace
 * feed, CoreModel inner loop, memory system — under each simulation
 * kernel (sim/kernel.h), so the batched-vs-legacy speedup is the
 * headline number of docs/PERF.md and the pair CI gates together.
 *
 * The checkpoint subsystem (src/ckpt) adds three rows:
 *  - BM_CheckpointSaveRestore: the full rnr-ckpt-v1 roundtrip on a
 *    warmed one-core System — serialize every cache/TLB/DRAM/core and
 *    the prefetcher, checksum, parse, load it all back.  Items are
 *    snapshot *bytes*, so the rate is codec throughput and bounds how
 *    often window-boundary snapshots are affordable.
 *  - BM_WarmupGenerate vs BM_WarmupFork: the sweep warm-up A/B —
 *    native urand graph synthesis against decoding the published
 *    input snapshot the checkpoint-fork sweep shares.  Items are
 *    inputs, so fork-rate / generate-rate is the per-cell warm-up
 *    speedup every forked sweep config enjoys (docs/PERF.md).
 *
 * Run `micro_hotpath compare <baseline.json> <current.json>` to use the
 * binary as a regression gate instead (bench_util.h, benchCompareMain);
 * any other arguments go to google-benchmark as usual.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "ckpt/checkpoint.h"
#include "cpu/system.h"
#include "mem/memory_system.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "prefetch/factory.h"
#include "sim/attrib.h"
#include "sim/config.h"
#include "sim/kernel.h"
#include "sim/timeseries.h"
#include "workloads/graph_gen.h"
#include "workloads/pagerank.h"

namespace rnr {
namespace {

/** Records one PageRank/urand iteration once; shared by all variants. */
const std::vector<TraceRecord> &
hotTrace()
{
    static const std::vector<TraceRecord> trace = [] {
        WorkloadOptions opts;
        opts.cores = 1;
        opts.use_rnr = false; // pure demand trace: no control records
        PageRankWorkload wl(makeGraphInput("urand").graph, opts);
        std::vector<TraceBuffer> bufs(1);
        wl.emitIteration(0, /*is_last=*/true, bufs);
        const std::vector<TraceRecord> &recs = bufs[0].records();
        const std::size_t n =
            std::min<std::size_t>(recs.size(), std::size_t{1} << 21);
        return std::vector<TraceRecord>(recs.begin(), recs.begin() + n);
    }();
    return trace;
}

void
BM_DemandAccess(benchmark::State &state, PrefetcherKind kind)
{
    const std::vector<TraceRecord> &trace = hotTrace();
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    MemorySystem ms(mcfg);
    std::unique_ptr<Prefetcher> pf = createPrefetcher(kind);
    ms.setPrefetcher(0, pf.get());

    // Issue ticks advance like a 4-wide core would: one cycle per memory
    // op plus the record's instruction gap share.  Time never rewinds
    // across benchmark iterations, matching the simulator's contract.
    Tick now = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        for (const TraceRecord &rec : trace) {
            now += 1 + rec.gap / 4;
            const DemandResult res = ms.demandAccess(
                0, rec.addr, rec.kind == RecordKind::Store, rec.pc, now);
            benchmark::DoNotOptimize(res.done);
        }
        ops += trace.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void
BM_DemandAccessSampled(benchmark::State &state)
{
    const std::vector<TraceRecord> &trace = hotTrace();
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    MemorySystem ms(mcfg);
    std::unique_ptr<Prefetcher> pf =
        createPrefetcher(PrefetcherKind::None);
    ms.setPrefetcher(0, pf.get());

    // The core model normally drives sampling from step(); here the
    // bench plays that role, offering the clock once per op like a
    // one-op cycle batch would.
    TelemetrySampler tm(kDefaultSampleCycles);
    ms.attachTelemetry(&tm);

    Tick now = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        for (const TraceRecord &rec : trace) {
            now += 1 + rec.gap / 4;
            tm.maybeSample(now);
            const DemandResult res = ms.demandAccess(
                0, rec.addr, rec.kind == RecordKind::Store, rec.pc, now);
            benchmark::DoNotOptimize(res.done);
        }
        ops += trace.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void
BM_DemandAccessObsGated(benchmark::State &state)
{
    const std::vector<TraceRecord> &trace = hotTrace();
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    MemorySystem ms(mcfg);
    std::unique_ptr<Prefetcher> pf =
        createPrefetcher(PrefetcherKind::None);
    ms.setPrefetcher(0, pf.get());

    // The disabled-observability call-site shape: the registry handed
    // this site nullptr (what RNR_METRICS=0 returns) and the default
    // info threshold rejects Debug, so both gates must cost one
    // predictable branch apiece.  DoNotOptimize keeps the compiler
    // from proving the pointer null and deleting the branch outright —
    // real call sites hold it in a static the optimizer can't fold.
    obs::Counter *ops_counter = nullptr;
    benchmark::DoNotOptimize(ops_counter);
    (void)obs::logThreshold(); // force env init so Debug is gated off

    Tick now = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        // Per-sweep log gate: no instrumented site logs per memory op —
        // log records mark cell/batch events — so the disabled check
        // belongs at the sweep granularity it really runs at.
        if (obs::logEnabled(obs::LogLevel::Debug))
            obs::LogLine(obs::LogLevel::Debug, "bench")
                .msg("sweep start")
                .kv("ops", static_cast<std::uint64_t>(trace.size()));
        for (const TraceRecord &rec : trace) {
            if (ops_counter)
                ops_counter->add();
            now += 1 + rec.gap / 4;
            const DemandResult res = ms.demandAccess(
                0, rec.addr, rec.kind == RecordKind::Store, rec.pc, now);
            benchmark::DoNotOptimize(res.done);
        }
        ops += trace.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void
BM_DemandAccessAttribGated(benchmark::State &state)
{
    const std::vector<TraceRecord> &trace = hotTrace();
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    MemorySystem ms(mcfg);
    std::unique_ptr<Prefetcher> pf =
        createPrefetcher(PrefetcherKind::None);
    ms.setPrefetcher(0, pf.get());

    // The disabled-attribution call-site shape (sim/attrib.h rule 2):
    // every cache/memory-system hook holds an `AttribCollector *` that
    // attachAttrib() left null, so the per-access cost must be one
    // predictable branch per hook.  attachAttrib(nullptr) walks the
    // exact detach path the runner uses, and the extra null-gated call
    // here mirrors the densest hook (the L2 demand-miss probe) at the
    // per-op granularity it really fires at.  DoNotOptimize keeps the
    // compiler from folding the branch away.
    ms.attachAttrib(nullptr);
    AttribCollector *at = nullptr;
    benchmark::DoNotOptimize(at);

    Tick now = 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        for (const TraceRecord &rec : trace) {
            if (at)
                at->onDemandMiss(0, rec.addr >> kBlockBits);
            now += 1 + rec.gap / 4;
            const DemandResult res = ms.demandAccess(
                0, rec.addr, rec.kind == RecordKind::Store, rec.pc, now);
            benchmark::DoNotOptimize(res.done);
        }
        ops += trace.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

/**
 * Whole-kernel A/B: a one-core System consumes the hot trace through
 * CoreModel under the requested kernel mode.  Items are trace records
 * (mem ops), so the rate is directly comparable to BM_DemandAccess —
 * the delta between them is what the core-side loop costs.
 */
void
BM_Kernel(benchmark::State &state, KernelMode mode)
{
    static const TraceBuffer &buf = *[] {
        static TraceBuffer b;
        for (const TraceRecord &rec : hotTrace())
            b.push(rec);
        return &b;
    }();
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    System sys(mcfg, mode);
    std::unique_ptr<Prefetcher> pf =
        createPrefetcher(PrefetcherKind::None);
    sys.mem().setPrefetcher(0, pf.get());

    std::uint64_t ops = 0;
    for (auto _ : state) {
        const IterationResult res = sys.run({&buf});
        benchmark::DoNotOptimize(res.end);
        ops += buf.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

/**
 * Full-state snapshot roundtrip (src/ckpt): serialize a warmed System
 * and its prefetcher into an rnr-ckpt-v1 blob, checksum it, parse it
 * back and load every field.  Items are snapshot bytes — the rate is
 * the codec's save+restore throughput, which bounds how often the
 * resumable runner can afford window-boundary snapshots.
 */
void
BM_CheckpointSaveRestore(benchmark::State &state)
{
    static const TraceBuffer &buf = *[] {
        static TraceBuffer b;
        for (const TraceRecord &rec : hotTrace())
            b.push(rec);
        return &b;
    }();
    MachineConfig mcfg = MachineConfig::scaledDefault();
    mcfg.cores = 1;
    System sys(mcfg, KernelMode::Batched);
    std::unique_ptr<Prefetcher> pf =
        createPrefetcher(PrefetcherKind::Stream);
    sys.mem().setPrefetcher(0, pf.get());
    // One warm pass so the snapshot carries populated caches, TLBs,
    // DRAM bookkeeping and live prefetcher state — what a real
    // window-boundary capture serializes (the workload itself is
    // fast-forwarded natively on restore, never serialized).
    (void)sys.run({&buf});

    std::uint64_t bytes = 0;
    for (auto _ : state) {
        ckpt::SnapshotWriter w(
            ckpt::SnapshotHeader{"bench", "bench-full", 1});
        sys.visitState(w.section(ckpt::SectionId::System));
        pf->saveState(w.section(ckpt::SectionId::Prefetchers));
        std::vector<std::uint8_t> blob = w.finish();

        ckpt::SnapshotReader reader;
        if (!reader.parse(blob).ok()) {
            state.SkipWithError("snapshot failed to parse");
            break;
        }
        ckpt::Deser sys_d = reader.section(ckpt::SectionId::System);
        sys.visitState(sys_d);
        ckpt::Deser pf_d = reader.section(ckpt::SectionId::Prefetchers);
        pf->loadState(pf_d);
        if (!sys_d.ok() || !pf_d.ok()) {
            state.SkipWithError("snapshot failed to load");
            break;
        }
        benchmark::DoNotOptimize(blob.data());
        bytes += blob.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(bytes));
}

/** The sweep warm-up's native side: synthesize the urand graph the
 *  way the first config of a workload key must.  Items are inputs. */
void
BM_WarmupGenerate(benchmark::State &state)
{
    std::uint64_t inputs = 0;
    for (auto _ : state) {
        GraphInput in = makeGraphInput("urand");
        benchmark::DoNotOptimize(in.graph.num_vertices);
        ++inputs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(inputs));
}

/** The warm-up's forked side: decode the published input snapshot
 *  instead of regenerating — what every other config of the workload
 *  key pays under RNR_CKPT=1.  Same items as BM_WarmupGenerate, so
 *  the rate ratio is the per-cell warm-up speedup. */
void
BM_WarmupFork(benchmark::State &state)
{
    // The exact blob the warm-up publishes: tag+name prefix, then the
    // CSR arrays (mirrors src/ckpt/input_fork.cc's encodeInput).
    static const std::vector<std::uint8_t> &blob = *[] {
        static std::vector<std::uint8_t> b;
        Graph g = makeGraphInput("urand").graph;
        ckpt::SnapshotWriter w(ckpt::SnapshotHeader{"bench", "", 0});
        ckpt::Ser &s = w.section(ckpt::SectionId::Input);
        std::uint64_t tag = 1;
        s.scalar(tag);
        std::string name = "urand";
        s.str(name);
        g.visitState(s);
        b = w.finish();
        return &b;
    }();

    std::uint64_t inputs = 0;
    for (auto _ : state) {
        ckpt::SnapshotReader reader;
        if (!reader.parse(blob).ok()) {
            state.SkipWithError("input snapshot failed to parse");
            break;
        }
        ckpt::Deser d = reader.section(ckpt::SectionId::Input);
        std::uint64_t tag = 0;
        d.scalar(tag);
        std::string name;
        d.str(name);
        Graph g;
        g.visitState(d);
        if (!d.ok()) {
            state.SkipWithError("input snapshot failed to decode");
            break;
        }
        benchmark::DoNotOptimize(g.num_vertices);
        ++inputs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(inputs));
}

BENCHMARK_CAPTURE(BM_DemandAccess, none, PrefetcherKind::None)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DemandAccess, stream, PrefetcherKind::Stream)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DemandAccessSampled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DemandAccessObsGated)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DemandAccessAttribGated)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, batched, rnr::KernelMode::Batched)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Kernel, legacy, rnr::KernelMode::Legacy)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointSaveRestore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmupGenerate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmupFork)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace rnr

// Hand-rolled main so the same binary doubles as the regression gate:
// `micro_hotpath compare <base.json> <cur.json> [--max-regress <pct>]`.
int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "compare") == 0)
        return rnr::bench::benchCompareMain(argc - 1, argv + 1);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
