/**
 * @file
 * Regenerates Fig 8: miss coverage (useful prefetches over baseline
 * misses) per workload and prefetcher, with GEOMEAN rows per app.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 8");
    printHeader("Fig 8", "Miss coverage (fraction of baseline misses)");

    precompute(figureMatrix(), opts);

    const auto kinds = figurePrefetchers();
    std::vector<std::string> heads;
    for (PrefetcherKind k : kinds)
        heads.push_back(toString(k));
    printColumnHeads(heads);

    std::map<std::string, std::map<std::string, std::vector<double>>>
        per_app;
    for (const WorkloadRef &w : allWorkloads()) {
        const ExperimentResult base =
            runExperiment(makeConfig(w, PrefetcherKind::None));
        std::vector<double> row;
        for (PrefetcherKind k : kinds) {
            if (!applicable(k, w)) {
                row.push_back(0.0);
                continue;
            }
            const double c =
                coverage(runExperiment(makeConfig(w, k)), base);
            row.push_back(c);
            per_app[w.app][toString(k)].push_back(c);
        }
        printRow(w.label(), row);
    }
    std::printf("\n");
    for (const auto &[app, cols] : per_app) {
        std::vector<double> row;
        for (PrefetcherKind k : kinds) {
            auto it = cols.find(toString(k));
            row.push_back(it == cols.end() ? 0.0 : geomean(it->second));
        }
        printRow("GEOMEAN " + app, row);
    }
    std::printf("\nPaper reference: RnR coverage averages 91.4%% / "
                "84.5%% / 88.7%% (PageRank / Hyper-ANF / spCG).\n");
    return 0;
}
