/**
 * @file
 * Regenerates Fig 1: the motivating coverage-vs-accuracy scatter of six
 * prefetcher classes running PageRank on the amazon graph.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 1");
    printHeader("Fig 1",
                "Coverage vs accuracy, PageRank on the amazon graph");

    const WorkloadRef w{"pagerank", "amazon"};

    // The paper's six points: next-line, Bingo (spatial), MISB
    // (temporal), SteMS (spatio-temporal), DROPLET (domain) and RnR.
    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::NextLine, PrefetcherKind::Bingo,
        PrefetcherKind::Misb,     PrefetcherKind::Stems,
        PrefetcherKind::Droplet,  PrefetcherKind::Rnr,
    };

    std::vector<ExperimentConfig> cells = {
        makeConfig(w, PrefetcherKind::None)};
    for (PrefetcherKind k : kinds)
        cells.push_back(makeConfig(w, k));
    precompute(cells, opts);

    const ExperimentResult base =
        runExperiment(makeConfig(w, PrefetcherKind::None));

    std::printf("%-12s %10s %10s\n", "prefetcher", "coverage",
                "accuracy");
    for (PrefetcherKind k : kinds) {
        const ExperimentResult r = runExperiment(makeConfig(w, k));
        std::printf("%-12s %9.1f%% %9.1f%%\n", toString(k).c_str(),
                    coverage(r, base) * 100, accuracy(r) * 100);
    }
    std::printf("\nPaper reference: RnR sits in the top-right corner "
                "(both >95%%); every baseline is far from it.\n");
    return 0;
}
