/**
 * @file
 * Regenerates Fig 6: speedup over the no-prefetcher baseline for every
 * workload/input and prefetcher, amortised over 100 algorithm
 * iterations as in the paper, plus the infinite-LLC "ideal" bar and
 * per-application geometric means.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 6");
    printHeader("Fig 6", "Speedup over no-prefetcher baseline");

    // Simulate the whole matrix (baselines, line-up, ideal LLC) on all
    // cores; the loops below then read the warm cache.
    precompute(figureMatrix(/*with_baseline=*/true, /*with_ideal=*/true),
               opts);

    const auto kinds = figurePrefetchers();
    std::vector<std::string> heads;
    for (PrefetcherKind k : kinds)
        heads.push_back(toString(k));
    heads.push_back("ideal");
    printColumnHeads(heads);

    std::map<std::string, std::map<std::string, std::vector<double>>>
        per_app; // app -> column -> speedups (for geomeans)

    for (const WorkloadRef &w : allWorkloads()) {
        const ExperimentResult base =
            runExperiment(makeConfig(w, PrefetcherKind::None));
        std::vector<double> row;
        for (PrefetcherKind k : kinds) {
            if (!applicable(k, w)) {
                row.push_back(0.0);
                continue;
            }
            const double s =
                speedup(runExperiment(makeConfig(w, k)), base);
            row.push_back(s);
            per_app[w.app][toString(k)].push_back(s);
        }
        ExperimentConfig ideal = makeConfig(w, PrefetcherKind::None);
        ideal.ideal_llc = true;
        const double si = speedup(runExperiment(ideal), base);
        row.push_back(si);
        per_app[w.app]["ideal"].push_back(si);
        printRow(w.label(), row);
    }

    std::printf("\n");
    for (const auto &[app, cols] : per_app) {
        std::vector<double> row;
        for (PrefetcherKind k : kinds) {
            auto it = cols.find(toString(k));
            row.push_back(it == cols.end() ? 0.0 : geomean(it->second));
        }
        row.push_back(geomean(cols.at("ideal")));
        printRow("GEOMEAN " + app, row);
    }
    std::printf("\nPaper reference: RnR achieves 2.11x (PageRank), "
                "2.23x (Hyper-ANF), 2.90x (spCG).\n");
    return 0;
}
