/**
 * @file
 * Regenerates Fig 10 (effectiveness of replay timing control) and the
 * Section VII-A6 record-iteration-overhead numbers.
 *
 * For each graph workload the RnR prefetcher runs with no timing
 * control, window control, and window+pace control; the speedup of
 * each over the no-prefetcher baseline shows that replay without
 * window control cannot improve performance (prefetches mistime) while
 * window control recovers the full speedup.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 10");
    printHeader("Fig 10 / §VII-A6",
                "Replay timing control & record overhead");

    precompute(controlMatrix(/*with_baseline=*/true), opts);

    printColumnHeads({"none", "window", "win+pace", "recOvhd%"});
    std::vector<double> rec_overheads;
    for (const WorkloadRef &w : allWorkloads()) {
        const ExperimentResult base =
            runExperiment(makeConfig(w, PrefetcherKind::None));
        std::vector<double> row;
        ExperimentResult paced;
        for (ReplayControlMode mode :
             {ReplayControlMode::None, ReplayControlMode::Window,
              ReplayControlMode::WindowPace}) {
            ExperimentConfig cfg = makeConfig(w, PrefetcherKind::Rnr);
            cfg.control = mode;
            const ExperimentResult r = runExperiment(cfg);
            row.push_back(speedup(r, base));
            if (mode == ReplayControlMode::WindowPace)
                paced = r;
        }
        const double ovhd = recordOverhead(paced, base) * 100;
        rec_overheads.push_back(ovhd);
        row.push_back(ovhd);
        printRow(w.label(), row);
    }
    double avg = 0;
    for (double o : rec_overheads)
        avg += o;
    avg /= static_cast<double>(rec_overheads.size());
    std::printf("\nAverage record-iteration overhead: %.2f%%\n", avg);
    std::printf("Paper reference: replay without window control gives "
                "no speedup; window control reaches 2.31x; the record "
                "iteration costs 1.02%% on average (worst 1.75%%).\n");
    return 0;
}
