/**
 * @file
 * Regenerates Fig 14: average speedup and metadata storage across
 * window sizes (the paper sweeps 16..4096 cache lines and finds a
 * wide flat optimum between 64 and 2048).
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 14");
    printHeader("Fig 14", "Window-size sweep (speedup & storage)");

    // Sweep on the graph workloads (the paper's averages are dominated
    // by them); storage barely moves because the division table is the
    // only window-dependent structure.
    const std::vector<std::uint32_t> windows = {16,  32,  64,  128,
                                                256, 512, 1024, 2048};

    std::vector<ExperimentConfig> cells;
    for (const WorkloadRef &w : allWorkloads()) {
        if (w.app == "spcg")
            continue;
        cells.push_back(makeConfig(w, PrefetcherKind::None));
        for (std::uint32_t ws : windows) {
            ExperimentConfig cfg = makeConfig(w, PrefetcherKind::Rnr);
            cfg.window_size = ws;
            cells.push_back(cfg);
        }
    }
    precompute(cells, opts);
    std::printf("%-10s %12s %16s\n", "window", "avg speedup",
                "storage overhead");
    for (std::uint32_t ws : windows) {
        std::vector<double> speedups;
        double storage = 0;
        int n = 0;
        for (const WorkloadRef &w : allWorkloads()) {
            if (w.app == "spcg")
                continue; // keep the sweep fast; graphs dominate
            const ExperimentResult base =
                runExperiment(makeConfig(w, PrefetcherKind::None));
            ExperimentConfig cfg = makeConfig(w, PrefetcherKind::Rnr);
            cfg.window_size = ws;
            const ExperimentResult r = runExperiment(cfg);
            speedups.push_back(speedup(r, base));
            storage += storageOverhead(r);
            ++n;
        }
        std::printf("%-10u %11.2fx %15.2f%%\n", ws, geomean(speedups),
                    100.0 * storage / n);
    }
    std::printf("\nPaper reference: window sizes 64-2048 perform "
                "similarly; below 64 the speedup drops and storage "
                "grows (division-table bloat).\n");
    return 0;
}
