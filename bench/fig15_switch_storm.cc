/**
 * @file
 * Fig 15 (extension): RnR accuracy and timeliness under context-switch
 * pressure.  Several ASID-tagged tenants round-robin over one core's
 * RnR engine; each row compares the paper's design (state saved and
 * restored on every switch, Section IV-C) against a strawman that
 * drops RnR state at each switch, across scheduling quanta.
 */
#include <cstdio>

#include "ckpt/switch_schedule.h"
#include "core/rnr_prefetcher.h"

using namespace rnr;
using namespace rnr::ckpt;

namespace {

void
printRow(unsigned quantum, const char *variant,
         const SwitchStormResult &r)
{
    const double total =
        static_cast<double>(r.pf_ontime + r.pf_early + r.pf_late +
                            r.pf_out_of_window);
    const double ontime_pct =
        total > 0 ? 100.0 * static_cast<double>(r.pf_ontime) / total : 0;
    std::printf("%-8u %-12s %9.1f%% %9.1f%% %9.1f%% %10llu %10llu\n",
                quantum, variant, 100.0 * r.accuracy(),
                100.0 * r.hitRate(), ontime_pct,
                static_cast<unsigned long long>(r.pf_issued),
                static_cast<unsigned long long>(r.switches));
}

} // namespace

int
main()
{
    std::printf("== Fig 15: RnR under context-switch storms ==\n");
    std::printf("4 tenants, 192 recorded misses each; per-switch "
                "architectural state: %llu bytes\n\n",
                static_cast<unsigned long long>(
                    RnrPrefetcher::contextSwitchBytes()));
    std::printf("%-8s %-12s %10s %10s %10s %10s %10s\n", "quantum",
                "state", "accuracy", "hit rate", "on-time", "issued",
                "switches");

    for (unsigned quantum : {16u, 32u, 64u, 128u, 192u}) {
        SwitchStormConfig cfg;
        cfg.quantum = quantum;
        cfg.seq_len = 192;
        cfg.save_restore = true;
        printRow(quantum, "save/restore", runSwitchStorm(cfg));
        cfg.save_restore = false;
        printRow(quantum, "lost", runSwitchStorm(cfg));
    }

    std::printf("\nPaper reference: RnR state is small enough to travel "
                "with the thread context (Section IV-C); dropping it "
                "restarts every replay at its head, so accuracy and "
                "coverage collapse as the quantum shrinks.\n");
    return 0;
}
