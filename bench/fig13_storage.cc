/**
 * @file
 * Regenerates Fig 13 (metadata storage overhead as a fraction of the
 * input size) and the Section VII-B hardware-overhead numbers.
 */
#include "bench_util.h"

#include "core/rnr_hw_model.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 13");
    printHeader("Fig 13 / §VII-B", "Storage and hardware overhead");

    std::vector<ExperimentConfig> cells;
    for (const WorkloadRef &w : allWorkloads())
        cells.push_back(makeConfig(w, PrefetcherKind::Rnr));
    precompute(cells, opts);

    std::printf("%-20s %12s %12s %10s\n", "workload", "seqTable(B)",
                "divTable(B)", "overhead");
    std::map<std::string, std::vector<double>> per_app;
    for (const WorkloadRef &w : allWorkloads()) {
        const ExperimentResult r =
            runExperiment(makeConfig(w, PrefetcherKind::Rnr));
        const double ovhd = storageOverhead(r);
        per_app[w.app].push_back(ovhd);
        std::printf("%-20s %12llu %12llu %9.2f%%\n", w.label().c_str(),
                    static_cast<unsigned long long>(r.seq_table_bytes),
                    static_cast<unsigned long long>(r.div_table_bytes),
                    ovhd * 100);
    }
    std::printf("\nAverages:");
    for (const auto &[app, v] : per_app) {
        double avg = 0;
        for (double x : v)
            avg += x;
        std::printf("  %s=%.1f%%", app.c_str(), 100 * avg / v.size());
    }
    std::printf("\nPaper reference: 12.1%% / 11.58%% / 13.0%% average "
                "for PageRank / Hyper-Anf / spCG; roadUSA 7.64%%, "
                "urand 22.43%%.\n\n");

    std::printf("%s\n", computeRnrHwCost().describe().c_str());
    std::printf("\nPaper reference: < 1 KB per core, 2.7e-3 mm^2, "
                "< 0.01%% of the 46.19 mm^2 die; 86.5 B saved across "
                "context switches.\n");
    return 0;
}
