/**
 * @file
 * Regenerates Fig 7: steady-state L2 demand MPKI per workload and
 * prefetcher, with the no-prefetcher baseline as the first column.
 */
#include "bench_util.h"

using namespace rnr;
using namespace rnr::bench;

int
main(int argc, char **argv)
{
    const SweepOptions opts = parseBenchArgs(argc, argv, "Fig 7");
    printHeader("Fig 7", "L2 MPKI (demand misses / kilo-instruction)");

    precompute(figureMatrix(), opts);

    const auto kinds = figurePrefetchers();
    std::vector<std::string> heads = {"none"};
    for (PrefetcherKind k : kinds)
        heads.push_back(toString(k));
    printColumnHeads(heads);

    for (const WorkloadRef &w : allWorkloads()) {
        std::vector<double> row;
        row.push_back(
            mpki(runExperiment(makeConfig(w, PrefetcherKind::None))));
        for (PrefetcherKind k : kinds) {
            row.push_back(applicable(k, w)
                              ? mpki(runExperiment(makeConfig(w, k)))
                              : 0.0);
        }
        printRow(w.label(), row);
    }
    std::printf("\nPaper reference: RnR-Combined reduces the demand miss "
                "ratio by 97.3%% / 94.6%% / 98.9%% for PageRank / "
                "Hyper-ANF / spCG.\n");
    return 0;
}
