file(REMOVE_RECURSE
  "CMakeFiles/prefetcher_duel.dir/prefetcher_duel.cpp.o"
  "CMakeFiles/prefetcher_duel.dir/prefetcher_duel.cpp.o.d"
  "prefetcher_duel"
  "prefetcher_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetcher_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
