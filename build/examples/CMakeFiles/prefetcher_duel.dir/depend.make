# Empty dependencies file for prefetcher_duel.
# This may be replaced when dependencies are built.
