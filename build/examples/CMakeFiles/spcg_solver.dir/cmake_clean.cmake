file(REMOVE_RECURSE
  "CMakeFiles/spcg_solver.dir/spcg_solver.cpp.o"
  "CMakeFiles/spcg_solver.dir/spcg_solver.cpp.o.d"
  "spcg_solver"
  "spcg_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spcg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
