# Empty compiler generated dependencies file for spcg_solver.
# This may be replaced when dependencies are built.
