# Empty dependencies file for pagerank_rnr.
# This may be replaced when dependencies are built.
