file(REMOVE_RECURSE
  "CMakeFiles/pagerank_rnr.dir/pagerank_rnr.cpp.o"
  "CMakeFiles/pagerank_rnr.dir/pagerank_rnr.cpp.o.d"
  "pagerank_rnr"
  "pagerank_rnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_rnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
