file(REMOVE_RECURSE
  "CMakeFiles/fig09_accuracy.dir/fig09_accuracy.cc.o"
  "CMakeFiles/fig09_accuracy.dir/fig09_accuracy.cc.o.d"
  "fig09_accuracy"
  "fig09_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
