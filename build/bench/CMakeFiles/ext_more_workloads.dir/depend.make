# Empty dependencies file for ext_more_workloads.
# This may be replaced when dependencies are built.
