file(REMOVE_RECURSE
  "CMakeFiles/ext_more_workloads.dir/ext_more_workloads.cc.o"
  "CMakeFiles/ext_more_workloads.dir/ext_more_workloads.cc.o.d"
  "ext_more_workloads"
  "ext_more_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_more_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
