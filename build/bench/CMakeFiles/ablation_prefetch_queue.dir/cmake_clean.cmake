file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefetch_queue.dir/ablation_prefetch_queue.cc.o"
  "CMakeFiles/ablation_prefetch_queue.dir/ablation_prefetch_queue.cc.o.d"
  "ablation_prefetch_queue"
  "ablation_prefetch_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefetch_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
