# Empty compiler generated dependencies file for table03_inputs.
# This may be replaced when dependencies are built.
