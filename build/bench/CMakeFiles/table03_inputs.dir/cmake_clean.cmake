file(REMOVE_RECURSE
  "CMakeFiles/table03_inputs.dir/table03_inputs.cc.o"
  "CMakeFiles/table03_inputs.dir/table03_inputs.cc.o.d"
  "table03_inputs"
  "table03_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
