# Empty dependencies file for fig10_timing_control.
# This may be replaced when dependencies are built.
