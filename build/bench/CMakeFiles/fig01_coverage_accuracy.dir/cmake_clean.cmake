file(REMOVE_RECURSE
  "CMakeFiles/fig01_coverage_accuracy.dir/fig01_coverage_accuracy.cc.o"
  "CMakeFiles/fig01_coverage_accuracy.dir/fig01_coverage_accuracy.cc.o.d"
  "fig01_coverage_accuracy"
  "fig01_coverage_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_coverage_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
