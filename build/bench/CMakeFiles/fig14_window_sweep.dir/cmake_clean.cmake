file(REMOVE_RECURSE
  "CMakeFiles/fig14_window_sweep.dir/fig14_window_sweep.cc.o"
  "CMakeFiles/fig14_window_sweep.dir/fig14_window_sweep.cc.o.d"
  "fig14_window_sweep"
  "fig14_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
