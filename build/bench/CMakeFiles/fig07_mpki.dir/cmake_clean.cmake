file(REMOVE_RECURSE
  "CMakeFiles/fig07_mpki.dir/fig07_mpki.cc.o"
  "CMakeFiles/fig07_mpki.dir/fig07_mpki.cc.o.d"
  "fig07_mpki"
  "fig07_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
