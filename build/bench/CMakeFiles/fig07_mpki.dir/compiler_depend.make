# Empty compiler generated dependencies file for fig07_mpki.
# This may be replaced when dependencies are built.
