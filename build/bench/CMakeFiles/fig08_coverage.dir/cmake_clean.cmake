file(REMOVE_RECURSE
  "CMakeFiles/fig08_coverage.dir/fig08_coverage.cc.o"
  "CMakeFiles/fig08_coverage.dir/fig08_coverage.cc.o.d"
  "fig08_coverage"
  "fig08_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
