# Empty compiler generated dependencies file for fig08_coverage.
# This may be replaced when dependencies are built.
