file(REMOVE_RECURSE
  "CMakeFiles/fig13_storage.dir/fig13_storage.cc.o"
  "CMakeFiles/fig13_storage.dir/fig13_storage.cc.o.d"
  "fig13_storage"
  "fig13_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
