# Empty dependencies file for fig13_storage.
# This may be replaced when dependencies are built.
