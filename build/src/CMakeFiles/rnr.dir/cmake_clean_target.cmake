file(REMOVE_RECURSE
  "librnr.a"
)
