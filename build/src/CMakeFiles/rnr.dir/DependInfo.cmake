
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/replay_control.cc" "src/CMakeFiles/rnr.dir/core/replay_control.cc.o" "gcc" "src/CMakeFiles/rnr.dir/core/replay_control.cc.o.d"
  "/root/repo/src/core/rnr_hw_model.cc" "src/CMakeFiles/rnr.dir/core/rnr_hw_model.cc.o" "gcc" "src/CMakeFiles/rnr.dir/core/rnr_hw_model.cc.o.d"
  "/root/repo/src/core/rnr_prefetcher.cc" "src/CMakeFiles/rnr.dir/core/rnr_prefetcher.cc.o" "gcc" "src/CMakeFiles/rnr.dir/core/rnr_prefetcher.cc.o.d"
  "/root/repo/src/core/rnr_runtime.cc" "src/CMakeFiles/rnr.dir/core/rnr_runtime.cc.o" "gcc" "src/CMakeFiles/rnr.dir/core/rnr_runtime.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/rnr.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/rnr.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/system.cc" "src/CMakeFiles/rnr.dir/cpu/system.cc.o" "gcc" "src/CMakeFiles/rnr.dir/cpu/system.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/rnr.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/rnr.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/metrics.cc" "src/CMakeFiles/rnr.dir/harness/metrics.cc.o" "gcc" "src/CMakeFiles/rnr.dir/harness/metrics.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/rnr.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/rnr.dir/harness/runner.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/rnr.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/rnr.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/rnr.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/rnr.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/rnr.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/rnr.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/rnr.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/rnr.dir/mem/tlb.cc.o.d"
  "/root/repo/src/prefetch/bingo.cc" "src/CMakeFiles/rnr.dir/prefetch/bingo.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/bingo.cc.o.d"
  "/root/repo/src/prefetch/domino.cc" "src/CMakeFiles/rnr.dir/prefetch/domino.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/domino.cc.o.d"
  "/root/repo/src/prefetch/droplet.cc" "src/CMakeFiles/rnr.dir/prefetch/droplet.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/droplet.cc.o.d"
  "/root/repo/src/prefetch/factory.cc" "src/CMakeFiles/rnr.dir/prefetch/factory.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/factory.cc.o.d"
  "/root/repo/src/prefetch/ghb.cc" "src/CMakeFiles/rnr.dir/prefetch/ghb.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/ghb.cc.o.d"
  "/root/repo/src/prefetch/imp.cc" "src/CMakeFiles/rnr.dir/prefetch/imp.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/imp.cc.o.d"
  "/root/repo/src/prefetch/misb.cc" "src/CMakeFiles/rnr.dir/prefetch/misb.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/misb.cc.o.d"
  "/root/repo/src/prefetch/next_line.cc" "src/CMakeFiles/rnr.dir/prefetch/next_line.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/next_line.cc.o.d"
  "/root/repo/src/prefetch/prefetcher.cc" "src/CMakeFiles/rnr.dir/prefetch/prefetcher.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/prefetcher.cc.o.d"
  "/root/repo/src/prefetch/stems.cc" "src/CMakeFiles/rnr.dir/prefetch/stems.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/stems.cc.o.d"
  "/root/repo/src/prefetch/stream.cc" "src/CMakeFiles/rnr.dir/prefetch/stream.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/stream.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/CMakeFiles/rnr.dir/prefetch/stride.cc.o" "gcc" "src/CMakeFiles/rnr.dir/prefetch/stride.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/rnr.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/rnr.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/rnr.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/rnr.dir/sim/stats.cc.o.d"
  "/root/repo/src/trace/trace_buffer.cc" "src/CMakeFiles/rnr.dir/trace/trace_buffer.cc.o" "gcc" "src/CMakeFiles/rnr.dir/trace/trace_buffer.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/rnr.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/rnr.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/tracer.cc" "src/CMakeFiles/rnr.dir/trace/tracer.cc.o" "gcc" "src/CMakeFiles/rnr.dir/trace/tracer.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/rnr.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/graph_gen.cc" "src/CMakeFiles/rnr.dir/workloads/graph_gen.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/graph_gen.cc.o.d"
  "/root/repo/src/workloads/hyperanf.cc" "src/CMakeFiles/rnr.dir/workloads/hyperanf.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/hyperanf.cc.o.d"
  "/root/repo/src/workloads/jacobi.cc" "src/CMakeFiles/rnr.dir/workloads/jacobi.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/jacobi.cc.o.d"
  "/root/repo/src/workloads/labelprop.cc" "src/CMakeFiles/rnr.dir/workloads/labelprop.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/labelprop.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/rnr.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/partition.cc" "src/CMakeFiles/rnr.dir/workloads/partition.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/partition.cc.o.d"
  "/root/repo/src/workloads/sparse.cc" "src/CMakeFiles/rnr.dir/workloads/sparse.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/sparse.cc.o.d"
  "/root/repo/src/workloads/sparse_gen.cc" "src/CMakeFiles/rnr.dir/workloads/sparse_gen.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/sparse_gen.cc.o.d"
  "/root/repo/src/workloads/spcg.cc" "src/CMakeFiles/rnr.dir/workloads/spcg.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/spcg.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/rnr.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/rnr.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
