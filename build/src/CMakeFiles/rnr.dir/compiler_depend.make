# Empty compiler generated dependencies file for rnr.
# This may be replaced when dependencies are built.
