file(REMOVE_RECURSE
  "CMakeFiles/prefetch_test.dir/prefetch/bingo_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/bingo_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/domino_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/domino_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/droplet_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/droplet_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/factory_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/factory_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/ghb_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/ghb_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/imp_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/imp_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/misb_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/misb_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/next_line_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/next_line_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/stems_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/stems_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/stream_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/stream_test.cc.o.d"
  "CMakeFiles/prefetch_test.dir/prefetch/stride_test.cc.o"
  "CMakeFiles/prefetch_test.dir/prefetch/stride_test.cc.o.d"
  "prefetch_test"
  "prefetch_test.pdb"
  "prefetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
