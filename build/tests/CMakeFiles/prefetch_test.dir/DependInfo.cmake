
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prefetch/bingo_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/bingo_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/bingo_test.cc.o.d"
  "/root/repo/tests/prefetch/domino_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/domino_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/domino_test.cc.o.d"
  "/root/repo/tests/prefetch/droplet_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/droplet_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/droplet_test.cc.o.d"
  "/root/repo/tests/prefetch/factory_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/factory_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/factory_test.cc.o.d"
  "/root/repo/tests/prefetch/ghb_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/ghb_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/ghb_test.cc.o.d"
  "/root/repo/tests/prefetch/imp_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/imp_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/imp_test.cc.o.d"
  "/root/repo/tests/prefetch/misb_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/misb_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/misb_test.cc.o.d"
  "/root/repo/tests/prefetch/next_line_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/next_line_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/next_line_test.cc.o.d"
  "/root/repo/tests/prefetch/stems_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/stems_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/stems_test.cc.o.d"
  "/root/repo/tests/prefetch/stream_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/stream_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/stream_test.cc.o.d"
  "/root/repo/tests/prefetch/stride_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch/stride_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch/stride_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rnr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
