file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/replay_control_test.cc.o"
  "CMakeFiles/core_test.dir/core/replay_control_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rnr_hw_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/rnr_hw_model_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rnr_prefetcher_test.cc.o"
  "CMakeFiles/core_test.dir/core/rnr_prefetcher_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rnr_runtime_test.cc.o"
  "CMakeFiles/core_test.dir/core/rnr_runtime_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rnr_state_test.cc.o"
  "CMakeFiles/core_test.dir/core/rnr_state_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
