
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/graph_gen_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/graph_gen_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/graph_gen_test.cc.o.d"
  "/root/repo/tests/workloads/graph_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/graph_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/graph_test.cc.o.d"
  "/root/repo/tests/workloads/hyperanf_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/hyperanf_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/hyperanf_test.cc.o.d"
  "/root/repo/tests/workloads/jacobi_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/jacobi_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/jacobi_test.cc.o.d"
  "/root/repo/tests/workloads/labelprop_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/labelprop_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/labelprop_test.cc.o.d"
  "/root/repo/tests/workloads/pagerank_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/pagerank_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/pagerank_test.cc.o.d"
  "/root/repo/tests/workloads/partition_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/partition_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/partition_test.cc.o.d"
  "/root/repo/tests/workloads/sparse_gen_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/sparse_gen_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/sparse_gen_test.cc.o.d"
  "/root/repo/tests/workloads/sparse_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/sparse_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/sparse_test.cc.o.d"
  "/root/repo/tests/workloads/spcg_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads/spcg_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads/spcg_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rnr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
