file(REMOVE_RECURSE
  "CMakeFiles/workloads_test.dir/workloads/graph_gen_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/graph_gen_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/graph_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/graph_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/hyperanf_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/hyperanf_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/jacobi_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/jacobi_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/labelprop_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/labelprop_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/pagerank_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/pagerank_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/partition_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/partition_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/sparse_gen_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/sparse_gen_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/sparse_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/sparse_test.cc.o.d"
  "CMakeFiles/workloads_test.dir/workloads/spcg_test.cc.o"
  "CMakeFiles/workloads_test.dir/workloads/spcg_test.cc.o.d"
  "workloads_test"
  "workloads_test.pdb"
  "workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
